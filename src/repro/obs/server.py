"""A live observability HTTP service over the run ledger.

``repro serve`` mounts the flight-recorder ledger (completed *and*
in-flight runs — entries are appended incrementally, so a running
process's jobs are visible mid-run) behind these read endpoints:

* ``/metrics`` — a Prometheus text-format scrape: run counts by
  status, every recorded counter aggregated across runs, and the
  ``mr.derived.*`` gauges per run entry (labelled ``run``/``entry``).
* ``/runs`` — JSON list of recorded runs (id, kind, status, entries).
* ``/runs/<id>`` — one run's full detail (manifest, counters, entries);
  git-style unique id prefixes resolve.
* ``/healthz`` — liveness probe.

With a :class:`~repro.obs.jobservice.JobService` attached the server
is also the **write path**:

* ``POST /jobs`` — submit a job spec (``{"experiment": ...,
  "params": {...}}``); 202 with the job id on admission, 429 with a
  ``Retry-After`` header when the bounded queue is full, 400 on a
  malformed spec, 503 while draining.
* ``GET /jobs`` — queue stats plus every submitted job's state.
* ``GET /jobs/<id>`` — one job (``queued``/``running``/``done``/
  ``failed``) with its ledger run id once assigned.

Stdlib only (``ThreadingHTTPServer``) — what a Prometheus scraper
points at, and what the load generator drives.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.obs.jobservice import (
    JobQueueFull,
    JobService,
    JobSpecError,
    ServiceDraining,
)
from repro.obs.metrics import (
    _fmt,
    escape_label_value,
    prometheus_name,
)
from repro.obs.run_store import RunStore, RunStoreError


def render_metrics(store: RunStore) -> str:
    """The whole ledger as one Prometheus scrape.

    Counters aggregate across every run's entries (pipeline entries
    carry only their own ``pipeline.*`` ledger, so stage jobs are not
    double-counted); derived gauges keep per-run, per-entry resolution
    through labels.
    """
    runs = store.load_all()
    by_status = {"running": 0, "completed": 0, "failed": 0}
    counters: dict[str, float] = {}
    derived: dict[str, list[tuple[str, int, str, float]]] = {}
    entries_total = 0
    for run in runs:
        by_status[run.status_name] = by_status.get(run.status_name, 0) + 1
        for entry in run.entries:
            entries_total += 1
            for name, value in entry.get("counters", {}).items():
                counters[name] = counters.get(name, 0.0) + value
            for name, value in entry.get("derived", {}).items():
                derived.setdefault(name, []).append(
                    (
                        run.run_id,
                        int(entry.get("index", 0)),
                        str(entry.get("name", "")),
                        value,
                    )
                )

    lines = [
        "# HELP repro_runs Recorded runs in the ledger, by status",
        "# TYPE repro_runs gauge",
    ]
    for status in sorted(by_status):
        lines.append(
            f'repro_runs{{status="{escape_label_value(status)}"}} '
            f"{by_status[status]}"
        )
    lines.append(
        "# HELP repro_run_entries Recorded entries across all runs"
    )
    lines.append("# TYPE repro_run_entries gauge")
    lines.append(f"repro_run_entries {entries_total}")
    lines.append(
        "# HELP repro_store_torn_tail_lines JSONL tail lines skipped "
        "as torn (crash mid-append) by this store's reads"
    )
    lines.append("# TYPE repro_store_torn_tail_lines gauge")
    lines.append(
        f"repro_store_torn_tail_lines {store.torn_tail_lines}"
    )

    # Distinct raw counter names can sanitise to one Prometheus name
    # (``a.b`` and ``a_b`` both become ``a_b``); merging *before*
    # emission keeps exactly one ``# TYPE`` line per family — duplicate
    # declarations are a hard parse error for real scrapers.
    prom_counters: dict[str, float] = {}
    for raw in sorted(counters):
        name = prometheus_name(raw)
        prom_counters[name] = prom_counters.get(name, 0.0) + counters[raw]
    for name in sorted(prom_counters):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(prom_counters[name])}")

    # Same for derived gauges: one family per sanitised name, and
    # colliding samples with identical labels fold together so a
    # family never carries duplicate series either.
    prom_derived: dict[str, dict[tuple[str, int, str], float]] = {}
    for raw in sorted(derived):
        family = prom_derived.setdefault(prometheus_name(raw), {})
        for run_id, index, entry_name, value in derived[raw]:
            key = (run_id, index, entry_name)
            family[key] = family.get(key, 0.0) + value
    for name in sorted(prom_derived):
        lines.append(f"# TYPE {name} gauge")
        for (run_id, index, entry_name), value in prom_derived[
            name
        ].items():
            labels = (
                f'run="{escape_label_value(run_id)}",'
                f'index="{index}",'
                f'entry="{escape_label_value(entry_name)}"'
            )
            lines.append(f"{name}{{{labels}}} {_fmt(value)}")
    return "\n".join(lines) + "\n"


class _LedgerHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        store: RunStore,
        service: JobService | None = None,
    ):
        super().__init__(address, _Handler)
        self.store = store
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        store: RunStore = self.server.store  # type: ignore[attr-defined]
        try:
            if path == "/healthz":
                self._send(200, "ok\n", "text/plain; charset=utf-8")
            elif path == "/metrics":
                self._send(
                    200,
                    render_metrics(store),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/runs":
                self._send_json(
                    200, [run.summary() for run in store.load_all()]
                )
            elif path.startswith("/runs/"):
                prefix = path[len("/runs/") :]
                try:
                    record = store.load(store.resolve(prefix))
                except RunStoreError as exc:
                    self._send_json(404, {"error": str(exc)})
                    return
                self._send_json(200, record.detail())
            elif path == "/jobs" or path.startswith("/jobs/"):
                self._get_jobs(path)
            else:
                self._send_json(404, {"error": f"no such path: {path}"})
        except Exception as exc:  # a bad scrape must not kill the server
            self._send_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        service = self._service()
        try:
            if path != "/jobs":
                self._send_json(404, {"error": f"no such path: {path}"})
                return
            if service is None:
                self._send_json(
                    503,
                    {
                        "error": "job submission is disabled "
                        "(no job service attached)"
                    },
                )
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
                document = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(
                    400, {"error": f"request body is not JSON: {exc}"}
                )
                return
            try:
                record = service.submit(document)
            except JobSpecError as exc:
                self._send_json(400, {"error": str(exc)})
            except JobQueueFull as exc:
                self._send_json(
                    429,
                    {
                        "error": str(exc),
                        "retry_after": exc.retry_after,
                    },
                    headers={"Retry-After": f"{exc.retry_after:g}"},
                )
            except ServiceDraining as exc:
                self._send_json(503, {"error": str(exc)})
            else:
                doc = record.as_dict()
                doc["status_url"] = f"/jobs/{record.job_id}"
                self._send_json(202, doc)
        except Exception as exc:  # a bad submit must not kill the server
            self._send_json(500, {"error": str(exc)})

    def _get_jobs(self, path: str) -> None:
        service = self._service()
        if service is None:
            self._send_json(
                404,
                {
                    "error": "no job service attached "
                    "(start 'repro serve' for the write path)"
                },
            )
            return
        if path == "/jobs":
            self._send_json(200, service.describe())
            return
        job_id = path[len("/jobs/") :]
        record = service.job(job_id)
        if record is None:
            self._send_json(404, {"error": f"no such job: {job_id}"})
            return
        self._send_json(200, record.as_dict())

    def _service(self) -> JobService | None:
        return getattr(self.server, "service", None)

    def _send(
        self,
        code: int,
        body: str,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self,
        code: int,
        document: object,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send(
            code,
            json.dumps(document, indent=1) + "\n",
            "application/json",
            headers,
        )

    def log_message(self, format: str, *args: object) -> None:
        pass  # keep scrapes quiet; errors surface as HTTP 500 bodies


class ObservabilityServer:
    """Lifecycle wrapper: serve inline (CLI) or on a thread (tests)."""

    def __init__(
        self,
        store: RunStore,
        host: str = "127.0.0.1",
        port: int = 0,
        service: JobService | None = None,
    ) -> None:
        self._httpd = _LedgerHTTPServer((host, port), store, service)
        self._thread: threading.Thread | None = None
        self.service = service

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        """Serve on a daemon thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
