"""A live observability HTTP service over the run ledger.

``repro serve`` mounts the flight-recorder ledger (completed *and*
in-flight runs — entries are appended incrementally, so a running
process's jobs are visible mid-run) behind four endpoints:

* ``/metrics`` — a Prometheus text-format scrape: run counts by
  status, every recorded counter aggregated across runs, and the
  ``mr.derived.*`` gauges per run entry (labelled ``run``/``entry``).
* ``/runs`` — JSON list of recorded runs (id, kind, status, entries).
* ``/runs/<id>`` — one run's full detail (manifest, counters, entries);
  git-style unique id prefixes resolve.
* ``/healthz`` — liveness probe.

Stdlib only (``ThreadingHTTPServer``); this is the seam a job-service
front end mounts, and what a Prometheus scraper points at.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.obs.metrics import (
    _fmt,
    escape_label_value,
    prometheus_name,
)
from repro.obs.run_store import RunStore, RunStoreError


def render_metrics(store: RunStore) -> str:
    """The whole ledger as one Prometheus scrape.

    Counters aggregate across every run's entries (pipeline entries
    carry only their own ``pipeline.*`` ledger, so stage jobs are not
    double-counted); derived gauges keep per-run, per-entry resolution
    through labels.
    """
    runs = store.load_all()
    by_status = {"running": 0, "completed": 0, "failed": 0}
    counters: dict[str, float] = {}
    derived: dict[str, list[tuple[str, int, str, float]]] = {}
    entries_total = 0
    for run in runs:
        by_status[run.status_name] = by_status.get(run.status_name, 0) + 1
        for entry in run.entries:
            entries_total += 1
            for name, value in entry.get("counters", {}).items():
                counters[name] = counters.get(name, 0.0) + value
            for name, value in entry.get("derived", {}).items():
                derived.setdefault(name, []).append(
                    (
                        run.run_id,
                        int(entry.get("index", 0)),
                        str(entry.get("name", "")),
                        value,
                    )
                )

    lines = [
        "# HELP repro_runs Recorded runs in the ledger, by status",
        "# TYPE repro_runs gauge",
    ]
    for status in sorted(by_status):
        lines.append(
            f'repro_runs{{status="{escape_label_value(status)}"}} '
            f"{by_status[status]}"
        )
    lines.append(
        "# HELP repro_run_entries Recorded entries across all runs"
    )
    lines.append("# TYPE repro_run_entries gauge")
    lines.append(f"repro_run_entries {entries_total}")

    for raw in sorted(counters):
        name = prometheus_name(raw)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(counters[raw])}")

    for raw in sorted(derived):
        name = prometheus_name(raw)
        lines.append(f"# TYPE {name} gauge")
        for run_id, index, entry_name, value in derived[raw]:
            labels = (
                f'run="{escape_label_value(run_id)}",'
                f'index="{index}",'
                f'entry="{escape_label_value(entry_name)}"'
            )
            lines.append(f"{name}{{{labels}}} {_fmt(value)}")
    return "\n".join(lines) + "\n"


class _LedgerHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: tuple[str, int], store: RunStore):
        super().__init__(address, _Handler)
        self.store = store


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        store: RunStore = self.server.store  # type: ignore[attr-defined]
        try:
            if path == "/healthz":
                self._send(200, "ok\n", "text/plain; charset=utf-8")
            elif path == "/metrics":
                self._send(
                    200,
                    render_metrics(store),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/runs":
                self._send_json(
                    200, [run.summary() for run in store.load_all()]
                )
            elif path.startswith("/runs/"):
                prefix = path[len("/runs/") :]
                try:
                    record = store.load(store.resolve(prefix))
                except RunStoreError as exc:
                    self._send_json(404, {"error": str(exc)})
                    return
                self._send_json(200, record.detail())
            else:
                self._send_json(404, {"error": f"no such path: {path}"})
        except Exception as exc:  # a bad scrape must not kill the server
            self._send_json(500, {"error": str(exc)})

    def _send(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, document: object) -> None:
        self._send(
            code,
            json.dumps(document, indent=1) + "\n",
            "application/json",
        )

    def log_message(self, format: str, *args: object) -> None:
        pass  # keep scrapes quiet; errors surface as HTTP 500 bodies


class ObservabilityServer:
    """Lifecycle wrapper: serve inline (CLI) or on a thread (tests)."""

    def __init__(
        self,
        store: RunStore,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._httpd = _LedgerHTTPServer((host, port), store)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        """Serve on a daemon thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
