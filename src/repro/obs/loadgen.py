"""Load generator for the ``repro serve`` job-submission write path.

``repro loadgen`` replays many jobs against a live server and asserts
the service's heavy-traffic contract end to end:

* every job is submitted through ``POST /jobs``; a 429 (bounded queue
  full) is honoured by sleeping the server's ``Retry-After`` and
  retrying — admission control sheds load, it must never *lose* load;
* every accepted job must reach the ``done`` state and leave a
  finished (``completed``) run bundle in the ledger, served back by
  ``GET /runs/<run_id>``;
* while jobs flow, a scraper thread hits ``/metrics`` continuously and
  every scrape must pass the repo's own strict exposition validator
  (:func:`repro.obs.metrics.validate_prometheus_text`) — concurrent
  writers must never tear a scrape.

The ledger's retention must keep at least ``count`` runs for the
bundle check to hold (``REPRO_RUNS_KEEP``), since a prune racing the
verification is indistinguishable from a lost run.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import validate_prometheus_text

DEFAULT_URL = "http://127.0.0.1:9464"
DEFAULT_COUNT = 100
DEFAULT_CONCURRENCY = 8
DEFAULT_TIMEOUT = 600.0


@dataclass
class LoadReport:
    """What the run did, and every way it deviated from the contract."""

    count: int = 0
    accepted: int = 0
    retries_429: int = 0
    done: int = 0
    failed_jobs: list[str] = field(default_factory=list)
    lost_jobs: list[str] = field(default_factory=list)
    missing_bundles: list[str] = field(default_factory=list)
    scrapes: int = 0
    scrape_errors: list[str] = field(default_factory=list)
    submit_errors: list[str] = field(default_factory=list)
    seconds: float = 0.0

    def ok(self) -> bool:
        return (
            self.accepted == self.count
            and self.done == self.accepted
            and not self.failed_jobs
            and not self.lost_jobs
            and not self.missing_bundles
            and not self.scrape_errors
            and not self.submit_errors
            and self.scrapes > 0
        )

    def summary(self) -> str:
        lines = [
            f"jobs: {self.accepted}/{self.count} accepted "
            f"({self.retries_429} retries after 429), "
            f"{self.done} done, {len(self.failed_jobs)} failed, "
            f"{len(self.lost_jobs)} lost",
            f"bundles: {self.done - len(self.missing_bundles)}"
            f"/{self.done} finished run bundles verified",
            f"scrapes: {self.scrapes} /metrics scrapes, "
            f"{len(self.scrape_errors)} invalid",
            f"wall: {self.seconds:.1f}s",
        ]
        for label, problems in (
            ("failed", self.failed_jobs),
            ("lost", self.lost_jobs),
            ("missing bundle", self.missing_bundles),
            ("bad scrape", self.scrape_errors),
            ("submit error", self.submit_errors),
        ):
            for problem in problems[:5]:
                lines.append(f"  {label}: {problem}")
            if len(problems) > 5:
                lines.append(f"  ... {len(problems) - 5} more {label}")
        verdict = "OK" if self.ok() else "FAILED"
        return "\n".join(lines) + f"\nloadgen: {verdict}"


def _request(
    url: str, payload: dict | None = None, timeout: float = 30.0
) -> tuple[int, Any, dict]:
    """One HTTP exchange; 4xx/5xx come back as (code, body), not raises."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read().decode()
            return response.getcode(), body, dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), dict(exc.headers)


def _json_body(body: str) -> Any:
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        return {}


def run_load(
    url: str = DEFAULT_URL,
    experiment: str = "fig9",
    params: dict | None = None,
    count: int = DEFAULT_COUNT,
    concurrency: int = DEFAULT_CONCURRENCY,
    timeout: float = DEFAULT_TIMEOUT,
    poll_interval: float = 0.2,
    scrape_interval: float = 0.5,
) -> LoadReport:
    """Drive ``count`` jobs through a live server; see module docstring."""
    url = url.rstrip("/")
    report = LoadReport(count=count)
    deadline = time.monotonic() + timeout
    spec = {"experiment": experiment, "params": params or {}}
    job_ids: list[str] = []
    job_ids_lock = threading.Lock()
    stop_scraping = threading.Event()

    def scrape_loop() -> None:
        # Continuous scrapes *while* workers write: any torn read,
        # duplicate TYPE family, or 500 is a contract violation.
        while not stop_scraping.is_set():
            code, body, _ = _request(f"{url}/metrics")
            report.scrapes += 1
            if code != 200:
                report.scrape_errors.append(
                    f"scrape {report.scrapes}: HTTP {code}"
                )
            else:
                try:
                    validate_prometheus_text(body)
                except ValueError as exc:
                    report.scrape_errors.append(
                        f"scrape {report.scrapes}: {exc}"
                    )
            stop_scraping.wait(scrape_interval)

    def submit_one(index: int) -> None:
        while time.monotonic() < deadline:
            code, body, headers = _request(f"{url}/jobs", payload=spec)
            if code == 202:
                with job_ids_lock:
                    job_ids.append(_json_body(body)["job_id"])
                    report.accepted += 1
                return
            if code == 429:
                report.retries_429 += 1
                try:
                    retry_after = float(
                        headers.get("Retry-After") or 1.0
                    )
                except ValueError:
                    retry_after = 1.0
                time.sleep(min(retry_after, 2.0))
                continue
            report.submit_errors.append(
                f"job {index}: HTTP {code}: "
                f"{_json_body(body).get('error', body[:120])}"
            )
            return
        report.submit_errors.append(f"job {index}: submit deadline")

    started = time.monotonic()
    scraper = threading.Thread(target=scrape_loop, daemon=True)
    scraper.start()
    try:
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            for _ in pool.map(submit_one, range(count)):
                pass

        # Poll until every accepted job is terminal (or the deadline).
        pending = set(job_ids)
        states: dict[str, dict] = {}
        while pending and time.monotonic() < deadline:
            code, body, _ = _request(f"{url}/jobs")
            if code == 200:
                for job in _json_body(body).get("jobs", []):
                    if job["job_id"] in pending and job["state"] in (
                        "done",
                        "failed",
                    ):
                        states[job["job_id"]] = job
                        pending.discard(job["job_id"])
            if pending:
                time.sleep(poll_interval)
        report.lost_jobs = sorted(pending)
    finally:
        stop_scraping.set()
        scraper.join()

    for job_id, job in sorted(states.items()):
        if job["state"] != "done":
            report.failed_jobs.append(
                f"{job_id}: {job.get('error', 'failed')}"
            )
            continue
        report.done += 1
        run_id = job.get("run_id")
        code, body, _ = _request(f"{url}/runs/{run_id}")
        detail = _json_body(body)
        if code != 200 or detail.get("status") != "completed":
            report.missing_bundles.append(
                f"{job_id}: run {run_id} -> HTTP {code}, "
                f"status {detail.get('status')!r}"
            )
    report.seconds = time.monotonic() - started
    return report
