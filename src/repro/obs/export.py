"""Trace export: Chrome-trace-format JSON and a flat JSONL.

Chrome trace format (the "JSON Array / traceEvents" flavour) loads in
``chrome://tracing`` and in Perfetto's legacy-trace importer.  The
mapping:

* each **job** becomes one *process* (``pid``), named after the job;
* each **task** (``map3``, ``reduce0``) becomes one *thread* (``tid``)
  inside its job, so the scheduler's per-attempt slices — folded in
  from the :class:`~repro.mr.events.EventLog` — and the intra-task
  phase spans recorded by the task body stack on one track and nest
  visually;
* scheduler-level spans (waves, shuffle planning) live on ``tid 0``.

The JSONL flavour is one self-describing JSON object per line
(``{"type": "span" | "event" | "job", ...}``) and is what the
``repro trace`` CLI subcommand consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.trace import JobTrace, SpanRecord

#: Events ship times in microseconds.
_US = 1_000_000.0

#: tid reserved for scheduler-scope spans (waves etc.).
SCHEDULER_TID = 0


def _task_of(span: SpanRecord) -> str | None:
    task = span.attrs.get("task")
    return task if isinstance(task, str) else None


def _tid_table(job: JobTrace) -> dict[str, int]:
    """Stable task → tid assignment: map tasks first, then reduces."""
    tasks: list[str] = []
    seen: set[str] = set()
    for event in job.events:
        task = event.get("task_id")
        if isinstance(task, str) and task not in seen:
            seen.add(task)
            tasks.append(task)
    for span in job.spans:
        task = _task_of(span)
        if task is not None and task not in seen:
            seen.add(task)
            tasks.append(task)
    return {task: index + 1 for index, task in enumerate(tasks)}


def _event_slices(
    job: JobTrace, pid: int, tids: dict[str, int]
) -> Iterable[dict[str, Any]]:
    """Per-attempt slices from START→FINISH/FAIL event pairs."""
    starts: dict[tuple[str, int], float] = {}
    for event in job.events:
        task = event.get("task_id", "")
        attempt = int(event.get("attempt", 1))
        kind = event.get("event")
        t = float(event.get("t_seconds", 0.0))
        if kind == "start":
            starts[(task, attempt)] = t
        elif kind in ("finish", "fail"):
            begin = starts.pop((task, attempt), None)
            if begin is None:
                continue
            args: dict[str, Any] = {
                "attempt": attempt,
                "cpu_seconds": event.get("cpu_seconds", 0.0),
            }
            if kind == "fail":
                args["error"] = event.get("error", "")
            else:
                args["output_bytes"] = event.get("output_bytes", 0)
            yield {
                "name": (
                    f"{task} attempt {attempt}"
                    + (" [FAILED]" if kind == "fail" else "")
                ),
                "cat": f"scheduler,{event.get('kind', '')}",
                "ph": "X",
                "ts": begin * _US,
                "dur": max(t - begin, 0.0) * _US,
                "pid": pid,
                "tid": tids.get(task, SCHEDULER_TID),
                "args": args,
            }


def _span_slices(
    job: JobTrace, pid: int, tids: dict[str, int]
) -> Iterable[dict[str, Any]]:
    for span in job.spans:
        task = _task_of(span)
        yield {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.start * _US,
            "dur": max(span.duration, 0.0) * _US,
            "pid": pid,
            "tid": tids.get(task, SCHEDULER_TID) if task else SCHEDULER_TID,
            "args": dict(span.attrs),
        }


def chrome_trace(jobs: Sequence[JobTrace]) -> dict[str, Any]:
    """The whole collection as one Chrome-trace JSON document."""
    trace_events: list[dict[str, Any]] = []
    for pid, job in enumerate(jobs, start=1):
        tids = _tid_table(job)
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": job.job_name},
            }
        )
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": SCHEDULER_TID,
                "args": {"name": "scheduler"},
            }
        )
        for task, tid in tids.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": task},
                }
            )
        trace_events.extend(_event_slices(job, pid, tids))
        trace_events.extend(_span_slices(job, pid, tids))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, jobs: Sequence[JobTrace]) -> Path:
    """Write the Chrome-trace JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(jobs), indent=1))
    return path


# -- flat JSONL ------------------------------------------------------------


def write_jsonl(path: str | Path, jobs: Sequence[JobTrace]) -> Path:
    """Write one JSON object per line: job headers, spans, events.

    Every row carries the job's ``run`` index next to its name: one
    experiment driver often runs the *same-named* job several times
    (e.g. Figure 9's per-partitioner variants), and the index keeps
    those runs apart on reload.
    """
    path = Path(path)
    with path.open("w") as handle:
        for index, job in enumerate(jobs):
            header = {"type": "job", "job": job.job_name, "run": index}
            handle.write(json.dumps(header) + "\n")
            for span in job.spans:
                row = {"type": "span", "job": job.job_name, "run": index}
                row.update(span.as_dict())
                handle.write(json.dumps(row) + "\n")
            for event in job.events:
                row = {"type": "event", "job": job.job_name, "run": index}
                row.update(event)
                handle.write(json.dumps(row) + "\n")
    return path


def load_jsonl(path: str | Path) -> list[JobTrace]:
    """Load a JSONL trace back into :class:`JobTrace` objects."""
    jobs: dict[tuple[Any, str], JobTrace] = {}
    order: list[tuple[Any, str]] = []

    def job_for(run: Any, name: str) -> JobTrace:
        key = (run, name)
        if key not in jobs:
            jobs[key] = JobTrace(job_name=name)
            order.append(key)
        return jobs[key]

    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.get("type")
        name = row.get("job", "")
        run = row.get("run", 0)
        if kind == "job":
            job_for(run, name)
        elif kind == "span":
            job_for(run, name).spans.append(
                SpanRecord(
                    name=row["name"],
                    start=float(row["start"]),
                    duration=float(row["duration"]),
                    category=row.get("category", ""),
                    attrs=dict(row.get("attrs", {})),
                )
            )
        elif kind == "event":
            event = {
                key: value
                for key, value in row.items()
                if key not in ("type", "job", "run")
            }
            job_for(run, name).events.append(event)
    return [jobs[key] for key in order]
