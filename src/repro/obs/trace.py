"""Lightweight nested-span tracing for the MapReduce engine.

Design constraints, in order:

1. **Zero cost when disabled.**  Call sites do ``with
   current_tracer().span("map.spill"):`` — when no tracer is active
   this returns the process-wide :data:`NULL_TRACER`, whose ``span``
   hands back one shared no-op context manager.  No allocation, no
   timestamps, no counter changes, so the engine's byte-identical
   counter contract is untouched.
2. **Picklable records.**  Task attempts may run in worker processes
   (:class:`~repro.mr.executor.ParallelExecutor`); the spans they
   record travel back to the scheduler alongside the task result —
   exactly like :class:`~repro.mr.segment.SegmentPayload` — so a
   :class:`SpanRecord` is a plain frozen dataclass of primitives.
3. **One clock per timeline.**  The scheduler's tracer is synced to
   the job clock (seconds since job start, the same clock the
   :class:`~repro.mr.events.EventLog` stamps).  Worker-side tracers
   measure relative to the *task* start; the scheduler re-bases their
   spans onto the job clock using the attempt's START event offset, so
   every span in a finished trace shares one epoch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, timed slice of work."""

    name: str
    #: Seconds since the tracer's epoch (the job start once re-based).
    start: float
    duration: float
    #: Coarse grouping for viewers ("scheduler", "map", "reduce", "shared").
    category: str = ""
    #: Free-form attributes (task id, byte counts, record counts, ...).
    attrs: dict[str, Any] = field(default_factory=dict)

    def shifted(self, offset: float, **extra_attrs: Any) -> "SpanRecord":
        """A copy re-based by ``offset`` with ``extra_attrs`` merged in."""
        return SpanRecord(
            name=self.name,
            start=self.start + offset,
            duration=self.duration,
            category=self.category,
            attrs={**self.attrs, **extra_attrs},
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "category": self.category,
            "attrs": dict(self.attrs),
        }


class _Span:
    """An open span; a context manager that records itself on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_begin")

    def __init__(
        self, tracer: "Tracer", name: str, category: str, attrs: dict
    ):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self._begin = 0.0

    def __enter__(self) -> "_Span":
        self._begin = self._tracer.now()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = self._tracer.now()
        self._tracer._records.append(
            SpanRecord(
                name=self._name,
                start=self._begin,
                duration=end - self._begin,
                category=self._category,
                attrs=self._attrs,
            )
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)


class _NullSpan:
    """The shared do-nothing span of the :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`SpanRecord` objects against one clock."""

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self._records: list[SpanRecord] = []

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return self._clock() - self._epoch

    def sync(self, clock: Callable[[], float]) -> None:
        """Adopt ``clock`` as-is (its zero becomes this tracer's epoch).

        The scheduler calls this with its job clock so scheduler-side
        spans land on the same timeline as the event log.
        """
        self._clock = clock
        self._epoch = 0.0

    def span(self, name: str, category: str = "", **attrs: Any) -> _Span:
        """Open a span; use as ``with tracer.span("map.spill"): ...``."""
        return _Span(self, name, category, attrs)

    def extend(
        self,
        spans: Iterable[SpanRecord],
        offset: float = 0.0,
        **extra_attrs: Any,
    ) -> None:
        """Fold re-based foreign spans (e.g. a worker's) into this trace."""
        for span in spans:
            self._records.append(span.shifted(offset, **extra_attrs))

    def records(self) -> list[SpanRecord]:
        """Snapshot of every finished span, in completion order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def now(self) -> float:
        return 0.0

    def sync(self, clock: Callable[[], float]) -> None:
        return None

    def span(self, name: str, category: str = "", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def extend(
        self,
        spans: Iterable[SpanRecord],
        offset: float = 0.0,
        **extra_attrs: Any,
    ) -> None:
        return None

    def records(self) -> list[SpanRecord]:
        return []

    def __len__(self) -> int:
        return 0


#: The process-wide disabled tracer; call sites share this instance.
NULL_TRACER = NullTracer()

# -- the active tracer -----------------------------------------------------
#
# Task-phase code (map/reduce task internals, the Shared structure) is
# deep inside the call stack; threading a tracer argument through every
# constructor would contaminate a dozen signatures.  Instead the task
# attempt body *activates* its tracer for the duration of the task —
# in the worker process when attempts run on a pool — and instrumented
# code asks for ``current_tracer()``.

_active: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should record on (never ``None``)."""
    return _active


class activated:
    """Context manager installing ``tracer`` as the active tracer."""

    def __init__(self, tracer: Tracer | NullTracer):
        self._tracer = tracer
        self._previous: Tracer | NullTracer = NULL_TRACER

    def __enter__(self) -> Tracer | NullTracer:
        global _active
        self._previous = _active
        _active = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: Any) -> None:
        global _active
        _active = self._previous


# -- multi-job collection (the CLI's --trace flag) -------------------------


@dataclass
class JobTrace:
    """The complete trace of one finished job."""

    job_name: str
    #: Every span on the job timeline (seconds since job start).
    spans: list[SpanRecord] = field(default_factory=list)
    #: The scheduler's event log, as plain dicts (picklable/JSON-able).
    events: list[dict] = field(default_factory=list)


class TraceCollector:
    """Accumulates one :class:`JobTrace` per executed job.

    An experiment driver typically runs several jobs (the Original /
    EagerSH / LazySH / AdaptiveSH variants); the collector keeps each
    job's trace separate so the export can render them as separate
    processes on one timeline.
    """

    def __init__(self) -> None:
        self.jobs: list[JobTrace] = []

    def add_job(
        self,
        job_name: str,
        spans: Iterable[SpanRecord],
        events: Iterable[dict],
    ) -> None:
        self.jobs.append(
            JobTrace(
                job_name=job_name, spans=list(spans), events=list(events)
            )
        )

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobTrace]:
        return iter(self.jobs)


_collector: TraceCollector | None = None


def set_trace_collector(collector: TraceCollector) -> None:
    """Install a process-wide collector; jobs run after this are traced."""
    global _collector
    _collector = collector


def clear_trace_collector() -> None:
    global _collector
    _collector = None


def current_trace_collector() -> TraceCollector | None:
    return _collector
