"""The job-submission write path of ``repro serve``.

PR 7 built the *read* side of the heavy-traffic job service — the
flight recorder, the persistent :class:`~repro.obs.run_store.RunStore`
ledger, and the HTTP endpoints over it.  This module is the missing
*write* half: a :class:`JobService` accepts job specs (an experiment
name plus parameter overrides), admits them into a **bounded queue**
(a full queue is an explicit rejection the HTTP layer maps to a 429
with ``Retry-After``, not an unbounded backlog), and executes them on
a small pool of worker threads through the existing engine/scheduler.

Each job runs under its own **thread-scoped** flight recorder writing
into the shared store, so:

* ``GET /runs/<id>`` and ``/metrics`` serve a submitted job's status,
  receipt and ``mr.derived.*`` gauges the moment they land;
* a job submitted over HTTP produces a ``counters.json`` receipt
  **bit-identical** to the same job run via ``repro run --record``
  (the receipt is the deterministic analytic counter fold, and the
  worker drives the exact same experiment driver the CLI does);
* many jobs recording concurrently in one process never clobber each
  other — the process-wide hook of the one-run-per-process CLI days
  would, which is why :mod:`repro.obs.flightrecorder` grew scopes.

Shutdown is graceful: :meth:`JobService.drain` stops admission,
lets queued and in-flight jobs finish, then parks the workers.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.obs.flightrecorder import (
    THREAD_SCOPE,
    FlightRecorder,
    clear_flight_recorder,
    set_flight_recorder,
)
from repro.obs.run_store import COMPLETED, FAILED, RunStore

#: Job lifecycle states (``queued`` → ``running`` → ``done``/``failed``).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED_STATE = "failed"

DEFAULT_WORKERS = 2
DEFAULT_QUEUE_DEPTH = 16
#: Seconds a rejected client should wait before retrying (the HTTP
#: layer sends it as the ``Retry-After`` header of the 429).
DEFAULT_RETRY_AFTER = 1.0

#: Queue sentinel that parks one worker thread.
_STOP = object()


class JobSpecError(ValueError):
    """The submitted job document is malformed (HTTP 400)."""


class JobQueueFull(RuntimeError):
    """Admission control rejected the job (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceDraining(RuntimeError):
    """The service is shutting down; no new jobs (HTTP 503)."""


@dataclass
class JobRecord:
    """One submitted job, from admission to its ledger run id."""

    job_id: str
    experiment: str
    params: dict
    state: str
    submitted_unix: float
    run_id: str | None = None
    error: str | None = None
    started_unix: float | None = None
    finished_unix: float | None = None

    def as_dict(self) -> dict:
        doc = {
            "job_id": self.job_id,
            "experiment": self.experiment,
            "params": self.params,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
        }
        if self.run_id is not None:
            doc["run_id"] = self.run_id
        if self.started_unix is not None:
            doc["started_unix"] = self.started_unix
        if self.finished_unix is not None:
            doc["finished_unix"] = self.finished_unix
        if self.error is not None:
            doc["error"] = self.error
        return doc


def default_experiment_registry() -> dict[str, Callable[..., Any]]:
    """The CLI's experiment registry, reduced to name → driver."""
    from repro.cli import EXPERIMENTS

    return {name: fn for name, (fn, _) in EXPERIMENTS.items()}


def resolve_spec(
    document: Any, experiments: Mapping[str, Callable[..., Any]]
) -> tuple[str, dict]:
    """Validate a submitted job document into ``(experiment, params)``.

    Mirrors the CLI's override handling: unknown experiments and
    parameters fail with the known list, string values convert to the
    type of the parameter's default, and native JSON values must match
    that type (ints widen to float defaults).
    """
    from repro.cli import _convert, _tunable_params

    if not isinstance(document, Mapping):
        raise JobSpecError("job spec must be a JSON object")
    name = document.get("experiment", document.get("workload"))
    if not isinstance(name, str) or not name:
        raise JobSpecError(
            "job spec needs an 'experiment' (or 'workload') name; "
            "known experiments: " + ", ".join(sorted(experiments))
        )
    fn = experiments.get(name)
    if fn is None:
        raise JobSpecError(
            f"unknown experiment {name!r}; known experiments: "
            + ", ".join(sorted(experiments))
        )
    raw_params = document.get("params") or {}
    if not isinstance(raw_params, Mapping):
        raise JobSpecError("'params' must be a JSON object")
    tunable = _tunable_params(fn)
    params: dict[str, Any] = {}
    for raw_key, value in raw_params.items():
        key = str(raw_key).replace("-", "_")
        if key not in tunable:
            known = ", ".join(sorted(tunable))
            raise JobSpecError(
                f"unknown parameter {raw_key!r} for {name!r}; "
                f"tunable parameters: {known}"
            )
        default = tunable[key]
        if isinstance(value, str):
            try:
                value = _convert(value, default)
            except ValueError as exc:
                raise JobSpecError(
                    f"bad value for {raw_key!r}: {exc}"
                ) from exc
        elif isinstance(default, bool) or isinstance(value, bool):
            if not (
                isinstance(default, bool) and isinstance(value, bool)
            ):
                raise JobSpecError(
                    f"bad value for {raw_key!r}: expected "
                    f"{type(default).__name__}, got {value!r}"
                )
        elif isinstance(default, float) and isinstance(value, int):
            value = float(value)
        elif not isinstance(value, type(default)):
            raise JobSpecError(
                f"bad value for {raw_key!r}: expected "
                f"{type(default).__name__}, got {value!r}"
            )
        params[key] = value
    return name, params


class JobService:
    """Bounded admission queue + worker pool over the run ledger."""

    def __init__(
        self,
        store: RunStore,
        experiments: Mapping[str, Callable[..., Any]] | None = None,
        workers: int = DEFAULT_WORKERS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if workers < 1:
            raise ValueError("job service needs at least one worker")
        if queue_depth < 1:
            raise ValueError("admission queue depth must be >= 1")
        self._store = store
        self._experiments = (
            dict(experiments) if experiments is not None else None
        )
        self.workers = workers
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._draining = False
        self._threads: list[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "JobService":
        """Spawn the worker threads (idempotent)."""
        if not self._threads:
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    name=f"repro-job-worker-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
            for thread in self._threads:
                thread.start()
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: reject new jobs, finish admitted ones.

        Parks each worker with a sentinel *behind* everything already
        queued, so every accepted job still runs; returns ``True`` once
        all workers have exited (``False`` on timeout).
        """
        with self._lock:
            already = self._draining
            self._draining = True
        if self._threads and not already:
            for _ in self._threads:
                # Blocks while the queue is full — workers are still
                # consuming, so space frees up; the sentinel lands
                # after every accepted job.
                self._queue.put(_STOP)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for thread in self._threads:
            remaining = (
                None
                if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            thread.join(remaining)
        return all(not thread.is_alive() for thread in self._threads)

    # -- admission -------------------------------------------------------
    def submit(self, document: Any) -> JobRecord:
        """Admit one job document; raises instead of queueing unbounded.

        :raises JobSpecError: malformed document (map to HTTP 400).
        :raises ServiceDraining: shutting down (map to HTTP 503).
        :raises JobQueueFull: admission queue full (map to HTTP 429).
        """
        experiment, params = resolve_spec(document, self._registry())
        with self._lock:
            if self._draining:
                raise ServiceDraining(
                    "job service is draining; not accepting new jobs"
                )
            record = JobRecord(
                job_id=f"job-{next(self._seq):06d}",
                experiment=experiment,
                params=params,
                state=QUEUED,
                submitted_unix=time.time(),
            )
            try:
                self._queue.put_nowait(record)
            except queue.Full:
                raise JobQueueFull(
                    f"admission queue full ({self.queue_depth} jobs "
                    f"queued); retry after {self.retry_after:g}s",
                    self.retry_after,
                ) from None
            self._records[record.job_id] = record
            self._order.append(record.job_id)
        return record

    # -- inspection ------------------------------------------------------
    def job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return [self._records[job_id] for job_id in self._order]

    def describe(self) -> dict:
        """The ``GET /jobs`` document: queue stats + every job."""
        jobs = self.jobs()
        by_state = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED_STATE: 0}
        for record in jobs:
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "draining": self._draining,
            "states": by_state,
            "jobs": [record.as_dict() for record in jobs],
        }

    # -- execution -------------------------------------------------------
    def _registry(self) -> Mapping[str, Callable[..., Any]]:
        if self._experiments is None:
            self._experiments = default_experiment_registry()
        return self._experiments

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._execute(item)
            finally:
                self._queue.task_done()

    def _execute(self, record: JobRecord) -> None:
        """Run one job under its own thread-scoped flight recorder.

        This is deliberately the same sequence as ``repro run
        --record``: recorder in, driver call, recorder finalised from
        the ``finally`` path with ``failed`` status on a raise — so the
        receipt (and the failure bundle) are identical either way.
        """
        record.state = RUNNING
        record.started_unix = time.time()
        status = FAILED
        try:
            fn = self._registry()[record.experiment]
            recorder = FlightRecorder(
                self._store,
                kind="experiment",
                name=record.experiment,
                params={record.experiment: record.params},
                argv=["jobs", record.experiment],
            )
        except Exception as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            record.state = FAILED_STATE
            record.finished_unix = time.time()
            return
        record.run_id = recorder.run_id
        set_flight_recorder(recorder, scope=THREAD_SCOPE)
        try:
            fn(**record.params)
            status = COMPLETED
        except Exception as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            recorder.record_error(exc)
        finally:
            clear_flight_recorder(scope=THREAD_SCOPE)
            try:
                recorder.finalize(status)
            except Exception as exc:
                record.error = record.error or (
                    f"{type(exc).__name__}: {exc}"
                )
                status = FAILED
            record.state = (
                DONE if status == COMPLETED else FAILED_STATE
            )
            record.finished_unix = time.time()
