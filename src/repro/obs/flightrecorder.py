"""The flight recorder: writes every run into the persistent ledger.

Follows the same zero-cost-when-disabled pattern as the tracer's
process-wide collector: the engine asks :func:`current_flight_recorder`
after each job and gets ``None`` unless one was installed, so recording
costs nothing when off — and when on, it only *reads* the finished
:class:`~repro.mr.engine.JobResult`, never reaches into the run, so the
counter-determinism contract holds with the recorder on or off.

One :class:`FlightRecorder` owns one run directory (see
:mod:`repro.obs.run_store` for the layout).  Entries, events and spans
are appended incrementally as each job finishes, so a run that crashes
mid-way still leaves its post-mortem bundle on disk; the deterministic
``counters.json`` receipt and the ``metrics.prom`` dump land at
:meth:`FlightRecorder.finalize` — which the CLI drives from its
``finally`` path with ``status="failed"`` when the experiment raised.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Sequence

from repro.mr.counters import MEASURED_CPU_COUNTERS, Counters
from repro.obs.metrics import MetricsRegistry
from repro.obs.run_store import (
    COMPLETED,
    COUNTERS_FILE,
    ENTRIES_FILE,
    EVENTS_FILE,
    METRICS_FILE,
    SPANS_FILE,
    RunStore,
)

#: Version of the manifest/entry document shapes.
SCHEMA_VERSION = 1

#: Gauge-name prefix of the scheduler's derived-analytics pass.
DERIVED_PREFIX = "mr.derived."

#: Gauge-name prefix of the shared-memory shuffle plane's stats; like
#: the derived pass these are observational (never in the counter
#: receipt) but belong in the per-job entry rows for `runs diff`.
SHM_PREFIX = "mr.shm."


def _write_atomic(path: Path, payload: str) -> None:
    """Write a finalisation artifact atomically (temp file + rename)."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(payload)
    os.replace(tmp, path)


def run_environment() -> dict:
    """Interpreter/machine provenance recorded into every manifest."""
    from repro.bench.harness import provenance

    return provenance()


def describe_job_conf(job: Any) -> dict:
    """The manifest-able knobs of a :class:`~repro.mr.config.JobConf`.

    Only primitives: mapper/reducer are factories and stay out; the
    anti-combining config collapses to its strategy + threshold.
    """
    anti = getattr(job, "anti", None)
    strategy = "original"
    threshold_t = None
    if anti is not None:
        strategy = getattr(
            getattr(anti, "strategy", None), "value", "anti"
        )
        threshold_t = getattr(anti, "threshold_t", None)
        if threshold_t is not None and threshold_t == float("inf"):
            threshold_t = "inf"
    return {
        "name": getattr(job, "name", "job"),
        "num_reducers": getattr(job, "num_reducers", None),
        "executor": getattr(job, "executor", None),
        "codec": getattr(job, "map_output_codec", None),
        "sort_buffer_bytes": getattr(job, "sort_buffer_bytes", None),
        "merge_factor": getattr(job, "merge_factor", None),
        "combiner": getattr(job, "combiner", None) is not None,
        "strategy": strategy,
        "threshold_t": threshold_t,
        "innode_combining": getattr(job, "innode_combining", False),
        "innode_fanin": getattr(job, "innode_fanin", None),
        "max_task_attempts": getattr(job, "max_task_attempts", None),
        "speculative_execution": getattr(
            job, "speculative_execution", False
        ),
    }


def deterministic_counters(counters: dict[str, float]) -> dict[str, float]:
    """The receipt-able subset of a counter fold.

    Drops the measured-CPU families (wall-clock measurements of user /
    codec code, nondeterministic run to run); everything left is
    analytic, so two identical runs produce bit-identical receipts.
    """
    return {
        name: value
        for name, value in counters.items()
        if name not in MEASURED_CPU_COUNTERS
    }


class FlightRecorder:
    """Records one run (experiment / pipeline / bench) into the ledger."""

    def __init__(
        self,
        store: RunStore,
        kind: str,
        name: str,
        params: dict | None = None,
        argv: Sequence[str] | None = None,
    ) -> None:
        self._store = store
        #: The run-level registry: the aggregate of every recorded
        #: entry's metrics.  Its job-counter subset is the same fold as
        #: merging each job's counter bag in arrival order, so the
        #: finalised receipt is bit-identical to the engine's totals.
        self._metrics = MetricsRegistry()
        self._entry_index = 0
        self._error: str | None = None
        self._finalized = False
        #: One recorder may be fed from several threads (a pipeline's
        #: concurrent stages, the job service's workers): the lock
        #: keeps each entry's (index, metrics fold, rows) atomic so the
        #: fold order matches the entry order.
        self._lock = threading.Lock()
        manifest = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "name": name,
            "params": params or {},
            "argv": list(argv) if argv is not None else None,
            "env": run_environment(),
            "pid": os.getpid(),
        }
        run = store.create(manifest)
        self._run_id = run.run_id
        self._path = run.path

    @property
    def run_id(self) -> str:
        return self._run_id

    @property
    def path(self) -> Path:
        return self._path

    # -- recording -------------------------------------------------------
    def record_job(self, job: Any, result: Any) -> None:
        """Record one finished job (called by the engine after a run)."""
        with self._lock:
            self._record_job_locked(job, result)

    def _record_job_locked(self, job: Any, result: Any) -> None:
        index = self._entry_index
        self._entry_index += 1
        name = getattr(result, "job_name", None) or getattr(
            job, "name", "job"
        )
        self._metrics.merge_registry(result.metrics)
        derived = {
            gauge: value
            for gauge, value in result.metrics.gauge_values().items()
            if gauge.startswith((DERIVED_PREFIX, SHM_PREFIX))
        }
        self._store.append_row(
            self._run_id,
            ENTRIES_FILE,
            {
                "index": index,
                "kind": "job",
                "name": name,
                "conf": describe_job_conf(job),
                "counters": result.counters.as_dict(),
                "derived": derived,
                "shuffle_bytes_per_reducer": list(
                    result.shuffle_bytes_per_reducer
                ),
            },
        )
        self._append_spans(index, name, result.spans)
        self._append_events(index, name, result.events.as_dicts())

    def record_pipeline(self, name: str, result: Any) -> None:
        """Record one pipeline run as a ``pipeline:<name>`` entry.

        The pipeline's MapReduce stages were already recorded one by
        one through the engine hook, so only the pipeline-level ledger
        (``pipeline.*`` cache/stage counters) folds in here — job
        counters are never double-counted.
        """
        with self._lock:
            self._record_pipeline_locked(name, result)

    def _record_pipeline_locked(self, name: str, result: Any) -> None:
        index = self._entry_index
        self._entry_index += 1
        entry_name = f"pipeline:{name}"
        pipeline_counters = {
            cname: value
            for cname, value in result.metrics.counter_values().items()
            if cname.startswith("pipeline.")
        }
        bag = Counters()
        for cname in sorted(pipeline_counters):
            bag.add(cname, pipeline_counters[cname])
        self._metrics.merge_counters(bag)
        self._store.append_row(
            self._run_id,
            ENTRIES_FILE,
            {
                "index": index,
                "kind": "pipeline",
                "name": entry_name,
                "counters": pipeline_counters,
                "derived": {},
                "stages": [
                    getattr(stage, "name", "") for stage in result.stages
                ],
                "loop_iterations": dict(result.loop_iterations),
            },
        )
        self._append_spans(index, entry_name, result.spans)

    def record_bench(self, results: Sequence[Any]) -> None:
        """Record a bench sweep: one ``bench`` entry per suite result."""
        from repro.bench.harness import ledger_entries

        for entry in ledger_entries(results):
            with self._lock:
                self._record_bench_entry_locked(entry)

    def _record_bench_entry_locked(self, entry: dict) -> None:
        index = self._entry_index
        self._entry_index += 1
        bag = Counters()
        for cname in sorted(entry["counters"]):
            bag.add(cname, entry["counters"][cname])
        self._metrics.merge_counters(bag)
        self._store.append_row(
            self._run_id, ENTRIES_FILE, {"index": index, **entry}
        )

    def record_error(self, exc: BaseException) -> None:
        """Attach a terminal failure to the run's final status.

        If the exception carries the scheduler's completed event log
        (terminal task failures do), its events join the post-mortem
        bundle under a ``terminal-failure`` pseudo-job.
        """
        with self._lock:
            self._error = f"{type(exc).__name__}: {exc}"
            events = getattr(exc, "events", None)
            if events is not None:
                rows = (
                    events.as_dicts()
                    if hasattr(events, "as_dicts")
                    else list(events)
                )
                self._append_events(
                    self._entry_index, "terminal-failure", rows
                )

    # -- finalisation ----------------------------------------------------
    def finalize(self, status: str = COMPLETED) -> str:
        """Write the receipt artifacts and the final status; idempotent.

        ``counters.json`` holds only the deterministic (analytic)
        counter fold — the receipt two identical runs reproduce bit for
        bit; the full fold including measured CPU lives in
        ``metrics.prom`` and the per-entry rows.
        """
        with self._lock:
            if self._finalized:
                return self._run_id
            self._finalized = True
            analytic = deterministic_counters(
                self._metrics.job_counters().as_dict()
            )
            # Receipt and dump land atomically (temp file + rename):
            # a concurrent scrape never observes a torn receipt.
            _write_atomic(
                self._path / COUNTERS_FILE,
                json.dumps(
                    {"schema": SCHEMA_VERSION, "counters": analytic},
                    indent=1,
                    sort_keys=True,
                )
                + "\n",
            )
            _write_atomic(
                self._path / METRICS_FILE,
                self._metrics.prometheus_text(),
            )
            status_doc: dict[str, Any] = {
                "status": status,
                "finished_unix": time.time(),
                "entries": self._entry_index,
            }
            if self._error is not None:
                status_doc["error"] = self._error
            self._store.write_status(self._run_id, status_doc)
        self._store.prune()
        return self._run_id

    # -- internals -------------------------------------------------------
    def _append_spans(
        self, index: int, name: str, spans: Sequence[Any]
    ) -> None:
        # The same row shape `repro trace` consumes (obs.export
        # write_jsonl/load_jsonl), so a recorded run's spans.jsonl
        # renders directly with the existing per-phase report.
        self._store.append_row(
            self._run_id,
            SPANS_FILE,
            {"type": "job", "job": name, "run": index},
        )
        for span in spans:
            row = {"type": "span", "job": name, "run": index}
            row.update(span.as_dict())
            self._store.append_row(self._run_id, SPANS_FILE, row)

    def _append_events(
        self, index: int, name: str, events: Sequence[dict]
    ) -> None:
        for event in events:
            row = {"type": "event", "job": name, "run": index}
            row.update(event)
            self._store.append_row(self._run_id, EVENTS_FILE, row)


# -- the process-wide (and thread-scoped) hook -----------------------------

_recorder: FlightRecorder | None = None
_thread_hook = threading.local()

#: Hook scopes: ``"process"`` is the CLI's classic one-run-per-process
#: install; ``"thread"`` scopes the recorder to the calling thread so
#: the job service's worker pool can run many recorded jobs
#: concurrently in one process without clobbering each other.
PROCESS_SCOPE = "process"
THREAD_SCOPE = "thread"


def _check_scope(scope: str) -> None:
    if scope not in (PROCESS_SCOPE, THREAD_SCOPE):
        raise ValueError(
            f"unknown flight-recorder scope {scope!r}; "
            f"expected {PROCESS_SCOPE!r} or {THREAD_SCOPE!r}"
        )


def set_flight_recorder(
    recorder: FlightRecorder, scope: str = PROCESS_SCOPE
) -> None:
    """Install a recorder; jobs run after this are recorded.

    A thread-scoped recorder shadows the process-wide one for the
    installing thread only (the engine resolves thread-local first).
    """
    _check_scope(scope)
    if scope == THREAD_SCOPE:
        _thread_hook.recorder = recorder
    else:
        global _recorder
        _recorder = recorder


def clear_flight_recorder(scope: str = PROCESS_SCOPE) -> None:
    _check_scope(scope)
    if scope == THREAD_SCOPE:
        _thread_hook.recorder = None
    else:
        global _recorder
        _recorder = None


def current_flight_recorder() -> FlightRecorder | None:
    recorder = getattr(_thread_hook, "recorder", None)
    return recorder if recorder is not None else _recorder
