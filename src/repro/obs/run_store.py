"""The persistent run ledger: content-addressed run directories.

Every recorded run (an experiment, a pipeline, a bench sweep) lives in
its own directory under the store root (``.repro/runs`` by default,
``REPRO_RUNS_DIR`` overrides)::

    .repro/runs/<run_id>/
        manifest.json   # what ran: kind, name, params, env, schema
        status.json     # running | completed | failed (+ error)
        entries.jsonl   # one row per recorded job / pipeline / suite
        events.jsonl    # per-attempt scheduler events, flat
        spans.jsonl     # phase spans in the `repro trace` JSONL shape
        counters.json   # deterministic run-total counter fold
        metrics.prom    # Prometheus text dump of the run registry

The run id is content-addressed: a UTC timestamp prefix (so a plain
directory sort is chronological) followed by a SHA-256 prefix of the
canonical manifest JSON.  ``entries``/``events``/``spans`` are written
*incrementally* by the flight recorder, so a run that dies mid-way
still leaves a usable post-mortem bundle; ``counters.json`` and
``metrics.prom`` land at finalisation.

Retention: :meth:`RunStore.prune` keeps the newest ``keep`` finished
runs (``REPRO_RUNS_KEEP`` overrides the default of 64) and never
touches a run that is still ``running``.

Concurrency contract: many writers (processes or threads) may share
one store root.  Creation retries on directory collisions instead of
pre-checking, JSONL rows land as one ``O_APPEND`` write each (so a
crash can only tear the *final* line, which readers skip and count),
JSON documents are written to a temp file and atomically renamed into
place, and readers tolerate runs vanishing underneath them (a
concurrent ``prune``/``delete``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

#: File names inside one run directory.
MANIFEST_FILE = "manifest.json"
STATUS_FILE = "status.json"
ENTRIES_FILE = "entries.jsonl"
EVENTS_FILE = "events.jsonl"
SPANS_FILE = "spans.jsonl"
COUNTERS_FILE = "counters.json"
METRICS_FILE = "metrics.prom"

DEFAULT_ROOT = ".repro/runs"
ENV_ROOT = "REPRO_RUNS_DIR"
ENV_KEEP = "REPRO_RUNS_KEEP"
DEFAULT_KEEP = 64

#: Run statuses a ledger entry can carry.
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"


class RunStoreError(Exception):
    """A ledger lookup or write failed (unknown id, ambiguous prefix)."""


@dataclass(frozen=True)
class OpenRun:
    """Handle to a freshly created (still-running) run directory."""

    run_id: str
    path: Path


@dataclass
class RunRecord:
    """One recorded run, loaded back from its directory."""

    run_id: str
    path: Path
    manifest: dict
    status: dict
    entries: list[dict] = field(default_factory=list)
    #: The deterministic run-total counters, or ``None`` for a run that
    #: never finalised (hard crash mid-run).
    counters: dict | None = None

    @property
    def status_name(self) -> str:
        return self.status.get("status", RUNNING)

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", "run")

    @property
    def name(self) -> str:
        return self.manifest.get("name", "")

    @property
    def started(self) -> float:
        return float(self.manifest.get("started_unix", 0.0))

    def summary(self) -> dict:
        """The compact JSON shape the ``/runs`` endpoint lists."""
        doc = {
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "status": self.status_name,
            "started_unix": self.started,
            "entries": len(self.entries),
        }
        if "finished_unix" in self.status:
            doc["finished_unix"] = self.status["finished_unix"]
        if "error" in self.status:
            doc["error"] = self.status["error"]
        return doc

    def detail(self) -> dict:
        """The full JSON shape the ``/runs/<id>`` endpoint returns."""
        doc = self.summary()
        doc["manifest"] = self.manifest
        doc["counters"] = self.counters
        doc["entry_list"] = self.entries
        return doc

    def metrics_text(self) -> str | None:
        """The finalised Prometheus dump, or ``None`` if never written."""
        path = self.path / METRICS_FILE
        return path.read_text() if path.exists() else None


def _canonical_json(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _read_json(path: Path, default: dict | None = None) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return dict(default or {})


def _write_json(path: Path, document: dict) -> None:
    """Write a JSON document atomically (temp file + rename).

    A plain ``write_text`` truncates first, so a crash (or a concurrent
    reader) mid-write observes a torn document; ``os.replace`` swaps
    the complete file in as one atomic step.
    """
    payload = json.dumps(document, indent=1, sort_keys=True) + "\n"
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(payload)
    os.replace(tmp, path)


def _read_jsonl(path: Path, on_torn_tail=None) -> list[dict]:
    """Read a JSONL artifact, tolerating a torn final line.

    Rows are appended as single ``O_APPEND`` writes, so a crash mid-
    append can only leave a partial *last* line.  Skipping (and
    counting, via ``on_torn_tail``) an undecodable tail keeps every
    complete row readable instead of poisoning the whole file; an
    undecodable line anywhere else is real corruption and still
    raises.
    """
    try:
        lines = path.read_text().splitlines()
    except FileNotFoundError:
        return []
    rows: list[dict] = []
    last = len(lines) - 1
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            if index == last:
                if on_torn_tail is not None:
                    on_torn_tail(path)
                break
            raise
    return rows


class RunStore:
    """The on-disk ledger of recorded runs."""

    def __init__(
        self,
        root: str | Path | None = None,
        keep: int | None = None,
    ) -> None:
        if root is None:
            root = os.environ.get(ENV_ROOT) or DEFAULT_ROOT
        self.root = Path(root)
        if keep is None:
            raw = os.environ.get(ENV_KEEP, "").strip()
            if raw:
                try:
                    keep = int(raw)
                except ValueError as exc:
                    raise RunStoreError(
                        f"invalid {ENV_KEEP}={raw!r}: expected a "
                        "positive integer (runs to keep when pruning)"
                    ) from exc
            else:
                keep = DEFAULT_KEEP
        if keep < 1:
            raise RunStoreError("retention must keep at least one run")
        self.keep = keep
        #: Torn JSONL tails skipped by this store instance's reads — a
        #: crash mid-append leaves at most one partial final line per
        #: artifact; readers skip it and account for it here (the
        #: ``/metrics`` scrape surfaces the total).
        self.torn_tail_lines = 0

    # -- creation --------------------------------------------------------
    def create(self, manifest: dict) -> OpenRun:
        """Create a run directory for ``manifest``; status ``running``.

        The id is derived from the manifest content itself, so the same
        manifest bytes always name the same directory; a (timestamp +
        pid) collision bumps a ``sequence`` field and re-hashes.

        ``mkdir`` itself is the claim — no existence pre-check — so two
        processes racing on the same manifest cannot both pass a check
        and then collide; the loser catches ``FileExistsError`` and
        retries with the next sequence number.
        """
        manifest = dict(manifest)
        manifest.setdefault("started_unix", time.time())
        stamp = time.strftime(
            "%Y%m%dT%H%M%SZ", time.gmtime(manifest["started_unix"])
        )
        sequence = 0
        while True:
            if sequence:
                manifest["sequence"] = sequence
            digest = hashlib.sha256(
                _canonical_json(manifest).encode()
            ).hexdigest()
            run_id = f"{stamp}-{digest[:10]}"
            path = self.root / run_id
            try:
                path.mkdir(parents=True)
            except FileExistsError:
                sequence += 1
                continue
            break
        manifest["run_id"] = run_id
        _write_json(path / MANIFEST_FILE, manifest)
        self.write_status(run_id, {"status": RUNNING})
        return OpenRun(run_id=run_id, path=path)

    def append_row(self, run_id: str, file_name: str, row: dict) -> None:
        """Append one JSON row to a run's JSONL artifact.

        The row is pre-encoded and lands through an unbuffered
        ``O_APPEND`` handle, so concurrent appenders never interleave
        within a line and a crash can only tear the final line — which
        :func:`_read_jsonl` skips and counts on read.
        """
        data = (json.dumps(row) + "\n").encode()
        with (self.root / run_id / file_name).open(
            "ab", buffering=0
        ) as handle:
            view = memoryview(data)
            while view:
                view = view[handle.write(view) :]

    def write_status(self, run_id: str, status: dict) -> None:
        _write_json(self.root / run_id / STATUS_FILE, status)

    # -- lookup ----------------------------------------------------------
    def run_ids(self) -> list[str]:
        """Every recorded run id, oldest first."""
        if not self.root.exists():
            return []
        ids = [
            entry.name
            for entry in self.root.iterdir()
            if (entry / MANIFEST_FILE).exists()
        ]
        return sorted(ids)

    def resolve(self, prefix: str) -> str:
        """The unique run id starting with ``prefix`` (git-style)."""
        matches = [
            run_id
            for run_id in self.run_ids()
            if run_id.startswith(prefix)
        ]
        if not matches:
            raise RunStoreError(
                f"no run matching {prefix!r} under {self.root}"
            )
        if len(matches) > 1:
            raise RunStoreError(
                f"ambiguous run prefix {prefix!r}: "
                + ", ".join(matches)
            )
        return matches[0]

    def load(self, run_id: str) -> RunRecord:
        path = self.root / run_id
        manifest_path = path / MANIFEST_FILE
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            # Also covers the run vanishing (concurrent prune/delete)
            # between a listing and this load.
            raise RunStoreError(
                f"no run matching {run_id!r} under {self.root}"
            ) from None
        counters_doc = _read_json(path / COUNTERS_FILE)
        return RunRecord(
            run_id=run_id,
            path=path,
            manifest=manifest,
            status=_read_json(path / STATUS_FILE, {"status": RUNNING}),
            entries=_read_jsonl(path / ENTRIES_FILE, self._count_torn),
            counters=counters_doc.get("counters")
            if counters_doc
            else None,
        )

    def load_all(self) -> list[RunRecord]:
        """Every loadable run; one vanishing mid-iteration (a
        concurrent ``prune``/``delete``) is skipped, not raised."""
        records: list[RunRecord] = []
        for run_id in self.run_ids():
            try:
                records.append(self.load(run_id))
            except RunStoreError:
                continue
        return records

    def _count_torn(self, path: Path) -> None:
        self.torn_tail_lines += 1

    # -- retention -------------------------------------------------------
    def prune(self, keep: int | None = None) -> list[str]:
        """Delete the oldest finished runs beyond ``keep``; a run still
        marked ``running`` is never pruned.  Returns the ids removed."""
        keep = self.keep if keep is None else keep
        finished = [
            record
            for record in self.load_all()
            if record.status_name != RUNNING
        ]
        finished.sort(key=lambda record: (record.started, record.run_id))
        removed: list[str] = []
        for record in finished[: max(len(finished) - keep, 0)]:
            # ignore_errors: a concurrent prune may be removing the
            # same run; losing that race is success, not failure.
            shutil.rmtree(record.path, ignore_errors=True)
            removed.append(record.run_id)
        return removed

    def delete(self, run_id: str) -> None:
        path = self.root / run_id
        if not (path / MANIFEST_FILE).exists():
            raise RunStoreError(
                f"no run matching {run_id!r} under {self.root}"
            )
        shutil.rmtree(path, ignore_errors=True)
