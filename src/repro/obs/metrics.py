"""A metrics registry: counters, gauges, histograms, Prometheus dump.

The registry is the *authoritative* accumulation point of one job run:
the scheduler folds every task attempt's counter bag through
:meth:`MetricsRegistry.merge_counters` and then re-derives the job's
:class:`~repro.mr.counters.Counters` totals from the registry via
:meth:`MetricsRegistry.job_counters`.  Because the totals are read back
out of the very same accumulators (same values, same fold order, plain
float addition), the Prometheus dump and the job counters can never
disagree — a single source of truth instead of two ledgers.

On top of the counter families the scheduler records observational
metrics that counters cannot express: per-task latency and CPU
histograms, shuffle-bytes-per-reducer, attempt/retry counts.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

from repro.mr.counters import Counters

#: Default histogram buckets: geometric, wide enough for both seconds
#: (task latencies) and byte counts when scaled observations are used.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
)

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A Prometheus-legal metric name for a dotted counter name."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


class Counter:
    """A monotonically accumulated value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
            tuple(buckets)
        ):
            raise ValueError("histogram buckets must be sorted and unique")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts per ``le`` bucket, cumulative (Prometheus shape)."""
        totals: list[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            totals.append(running)
        return totals


class MetricsRegistry:
    """Named counters, gauges and histograms for one job (or process)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Counter names that belong to the job-counter ledger (folded
        #: in via :meth:`merge_counters`), as opposed to observational
        #: metrics the scheduler records on the side.
        self._job_counter_names: set[str] = set()

    # -- creation/lookup -------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(name, help, buckets)
        return metric

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"metric {name!r} already registered with another type"
            )

    # -- job-counter integration -----------------------------------------
    def merge_counters(self, counters: Counters) -> None:
        """Fold one task's counter bag into the registry's counters.

        Iterates the bag in its native insertion order and performs the
        same ``+=`` per name as :meth:`Counters.merge`, so folding N
        bags through the registry produces *bit-identical* float totals
        to merging them into a ``Counters`` object directly.
        """
        for name, value in counters.as_dict().items():
            self._job_counter_names.add(name)
            self.counter(name).add(value)

    def job_counters(self) -> Counters:
        """The job's counter totals, re-derived from the registry.

        Only counters folded in through :meth:`merge_counters` qualify;
        observational metrics stay out of the job's counter bag.
        """
        totals = Counters()
        for name, metric in self._counters.items():
            if name in self._job_counter_names:
                totals.add(name, metric.value)
        return totals

    # -- registry aggregation --------------------------------------------
    def merge_registry(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (run-level aggregation).

        Counters add, gauges last-write-wins, histograms add bucket by
        bucket (layouts must match).  Job-counter provenance carries
        over: names folded via :meth:`merge_counters` in ``other`` stay
        job counters here, so the aggregate's :meth:`job_counters` is
        the same per-name float fold as merging every job's counter bag
        in arrival order — bit-identical totals.
        """
        for name, metric in other._counters.items():
            self.counter(name, metric.help).add(metric.value)
        self._job_counter_names |= other._job_counter_names
        for name, metric in other._gauges.items():
            self.gauge(name, metric.help).set(metric.value)
        for name, metric in other._histograms.items():
            mine = self.histogram(name, metric.help, metric.buckets)
            if mine.buckets != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ"
                )
            for index, count in enumerate(metric.bucket_counts):
                mine.bucket_counts[index] += count
            mine.sum += metric.sum
            mine.count += metric.count

    # -- snapshots -------------------------------------------------------
    def counter_values(self) -> dict[str, float]:
        return {name: m.value for name, m in self._counters.items()}

    def gauge_values(self) -> dict[str, float]:
        return {name: m.value for name, m in self._gauges.items()}

    def histogram_snapshots(self) -> dict[str, dict[str, Any]]:
        return {
            name: {
                "buckets": list(m.buckets),
                "counts": list(m.bucket_counts),
                "sum": m.sum,
                "count": m.count,
            }
            for name, m in self._histograms.items()
        }

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict snapshot of every metric (for JSON dumps)."""
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": self.histogram_snapshots(),
        }

    # -- Prometheus text exposition --------------------------------------
    def prometheus_text(self) -> str:
        """Render every metric in the Prometheus text format (0.0.4)."""
        lines: list[str] = []

        def emit_header(name: str, help_text: str, kind: str) -> None:
            if help_text:
                lines.append(
                    f"# HELP {name} {escape_help_text(help_text)}"
                )
            lines.append(f"# TYPE {name} {kind}")

        for raw_name in sorted(self._counters):
            metric = self._counters[raw_name]
            name = prometheus_name(raw_name)
            emit_header(name, metric.help, "counter")
            lines.append(f"{name} {_fmt(metric.value)}")
        for raw_name in sorted(self._gauges):
            metric = self._gauges[raw_name]
            name = prometheus_name(raw_name)
            emit_header(name, metric.help, "gauge")
            lines.append(f"{name} {_fmt(metric.value)}")
        for raw_name in sorted(self._histograms):
            metric = self._histograms[raw_name]
            name = prometheus_name(raw_name)
            emit_header(name, metric.help, "histogram")
            cumulative = metric.cumulative_counts()
            for boundary, count in zip(metric.buckets, cumulative):
                lines.append(
                    f'{name}_bucket{{le="{_fmt(boundary)}"}} {count}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + "\n"


#: Outcome suffixes of the scheduler's per-kind attempt counters
#: (``mr.<kind>.attempts.<outcome>``), with their help strings.  The
#: scheduler registers all of them for every run — a zero sample in the
#: Prometheus dump is a statement that the path was exercised zero
#: times, not that it does not exist.
ATTEMPT_OUTCOMES: dict[str, str] = {
    "failed": "attempts that raised (task failures and worker crashes)",
    "speculative": "speculative backup attempts launched",
    "timeout": "attempts abandoned after exceeding task_timeout_seconds",
    "worker_crash": "attempts lost to a crashed worker process",
}


def attempt_outcome_counter(
    registry: "MetricsRegistry", kind: str, outcome: str
) -> Counter:
    """The ``mr.<kind>.attempts.<outcome>`` counter of one registry."""
    return registry.counter(
        f"mr.{kind}.attempts.{outcome}",
        f"{kind} {ATTEMPT_OUTCOMES[outcome]}",
    )


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats without the '.0'."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def escape_help_text(text: str) -> str:
    """HELP-line escaping per the text format 0.0.4: ``\\`` and LF."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Label-value escaping: backslash, double-quote, and LF."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def parse_prometheus_counters(text: str) -> dict[str, float]:
    """Parse plain counter/gauge samples back out of a text dump.

    Helper for tests that assert the dump agrees with the job counters;
    histogram series (``_bucket``/``_sum``/``_count``) are skipped.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#") or "{" in line:
            continue
        name, _, raw = line.partition(" ")
        if name.endswith(("_sum", "_count")):
            continue
        values[name] = float(raw)
    return values


# -- full text-format parser (exposition format 0.0.4) ---------------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{(.*)\})?"  # optional label block
    r"\s+(\S+)"  # value
    r"(?:\s+(-?\d+))?$"  # optional timestamp
)
_LABEL_RE = re.compile(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)="')

#: Suffixes a histogram family's samples may carry.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_label_block(raw: str, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(raw):
        match = _LABEL_RE.match(raw, index)
        if match is None:
            raise ValueError(f"malformed label block in line: {line!r}")
        name = match.group(1)
        index = match.end()
        chars: list[str] = []
        while index < len(raw):
            char = raw[index]
            if char == "\\" and index + 1 < len(raw):
                chars.append(raw[index : index + 2])
                index += 2
                continue
            if char == '"':
                break
            chars.append(char)
            index += 1
        else:
            raise ValueError(f"unterminated label value: {line!r}")
        labels[name] = _unescape("".join(chars))
        index += 1  # closing quote
        if index < len(raw) and raw[index] == ",":
            index += 1
    return labels


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse a full text-format (0.0.4) exposition into families.

    Returns ``{family: {"type", "help", "samples"}}`` where each sample
    is ``(name, labels, value)``.  Histogram families claim their
    ``_bucket``/``_sum``/``_count`` series.  Raises ``ValueError`` on
    malformed lines, duplicate ``TYPE``/``HELP`` declarations, or a
    ``TYPE`` that arrives after the family already has samples.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_for(sample_name: str) -> dict[str, Any]:
        # A histogram's series attach to the declared base family.
        for suffix in _HISTOGRAM_SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                family = families.get(base)
                if family is not None and family["type"] in (
                    "histogram",
                    "summary",
                ):
                    return family
        return families.setdefault(
            sample_name,
            {"type": "untyped", "help": "", "samples": []},
        )

    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment
            if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"malformed {parts[1]} line: {line!r}")
            name = parts[2]
            payload = parts[3] if len(parts) > 3 else ""
            family = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            if parts[1] == "TYPE":
                if payload not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ValueError(f"unknown TYPE in line: {line!r}")
                if family["type"] != "untyped":
                    raise ValueError(f"duplicate TYPE for {name!r}")
                if family["samples"]:
                    raise ValueError(
                        f"TYPE for {name!r} after its samples"
                    )
                family["type"] = payload
            else:
                if family["help"]:
                    raise ValueError(f"duplicate HELP for {name!r}")
                family["help"] = _unescape(payload)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        name, label_block, raw_value = match.group(1, 2, 3)
        labels = (
            _parse_label_block(label_block, line) if label_block else {}
        )
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"bad sample value in line: {line!r}"
            ) from exc
        family_for(name)["samples"].append((name, labels, value))
    return families


def validate_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Parse and structurally validate an exposition; returns families.

    On top of :func:`parse_prometheus_text`'s line-level checks, every
    histogram family must have cumulative non-decreasing ``_bucket``
    series ending in an explicit ``+Inf`` bucket whose count equals the
    ``_count`` sample, plus a ``_sum`` sample.  Raises ``ValueError``.
    """
    families = parse_prometheus_text(text)
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets: list[tuple[float, float]] = []
        total = sum_value = None
        for sample_name, labels, value in family["samples"]:
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise ValueError(
                        f"histogram {name!r} bucket without le label"
                    )
                buckets.append((float(labels["le"]), value))
            elif sample_name == f"{name}_count":
                total = value
            elif sample_name == f"{name}_sum":
                sum_value = value
        if total is None or sum_value is None:
            raise ValueError(
                f"histogram {name!r} missing _sum/_count series"
            )
        if not buckets or buckets[-1][0] != float("inf"):
            raise ValueError(
                f"histogram {name!r} missing explicit +Inf bucket"
            )
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            raise ValueError(
                f"histogram {name!r} buckets are not cumulative"
            )
        if buckets[-1][1] != total:
            raise ValueError(
                f"histogram {name!r} +Inf bucket != _count"
            )
    return families
