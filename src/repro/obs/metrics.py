"""A metrics registry: counters, gauges, histograms, Prometheus dump.

The registry is the *authoritative* accumulation point of one job run:
the scheduler folds every task attempt's counter bag through
:meth:`MetricsRegistry.merge_counters` and then re-derives the job's
:class:`~repro.mr.counters.Counters` totals from the registry via
:meth:`MetricsRegistry.job_counters`.  Because the totals are read back
out of the very same accumulators (same values, same fold order, plain
float addition), the Prometheus dump and the job counters can never
disagree — a single source of truth instead of two ledgers.

On top of the counter families the scheduler records observational
metrics that counters cannot express: per-task latency and CPU
histograms, shuffle-bytes-per-reducer, attempt/retry counts.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

from repro.mr.counters import Counters

#: Default histogram buckets: geometric, wide enough for both seconds
#: (task latencies) and byte counts when scaled observations are used.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
)

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A Prometheus-legal metric name for a dotted counter name."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


class Counter:
    """A monotonically accumulated value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
            tuple(buckets)
        ):
            raise ValueError("histogram buckets must be sorted and unique")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts per ``le`` bucket, cumulative (Prometheus shape)."""
        totals: list[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            totals.append(running)
        return totals


class MetricsRegistry:
    """Named counters, gauges and histograms for one job (or process)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Counter names that belong to the job-counter ledger (folded
        #: in via :meth:`merge_counters`), as opposed to observational
        #: metrics the scheduler records on the side.
        self._job_counter_names: set[str] = set()

    # -- creation/lookup -------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(name, help, buckets)
        return metric

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"metric {name!r} already registered with another type"
            )

    # -- job-counter integration -----------------------------------------
    def merge_counters(self, counters: Counters) -> None:
        """Fold one task's counter bag into the registry's counters.

        Iterates the bag in its native insertion order and performs the
        same ``+=`` per name as :meth:`Counters.merge`, so folding N
        bags through the registry produces *bit-identical* float totals
        to merging them into a ``Counters`` object directly.
        """
        for name, value in counters.as_dict().items():
            self._job_counter_names.add(name)
            self.counter(name).add(value)

    def job_counters(self) -> Counters:
        """The job's counter totals, re-derived from the registry.

        Only counters folded in through :meth:`merge_counters` qualify;
        observational metrics stay out of the job's counter bag.
        """
        totals = Counters()
        for name, metric in self._counters.items():
            if name in self._job_counter_names:
                totals.add(name, metric.value)
        return totals

    # -- snapshots -------------------------------------------------------
    def counter_values(self) -> dict[str, float]:
        return {name: m.value for name, m in self._counters.items()}

    def gauge_values(self) -> dict[str, float]:
        return {name: m.value for name, m in self._gauges.items()}

    def histogram_snapshots(self) -> dict[str, dict[str, Any]]:
        return {
            name: {
                "buckets": list(m.buckets),
                "counts": list(m.bucket_counts),
                "sum": m.sum,
                "count": m.count,
            }
            for name, m in self._histograms.items()
        }

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict snapshot of every metric (for JSON dumps)."""
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": self.histogram_snapshots(),
        }

    # -- Prometheus text exposition --------------------------------------
    def prometheus_text(self) -> str:
        """Render every metric in the Prometheus text format (0.0.4)."""
        lines: list[str] = []

        def emit_header(name: str, help_text: str, kind: str) -> None:
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for raw_name in sorted(self._counters):
            metric = self._counters[raw_name]
            name = prometheus_name(raw_name)
            emit_header(name, metric.help, "counter")
            lines.append(f"{name} {_fmt(metric.value)}")
        for raw_name in sorted(self._gauges):
            metric = self._gauges[raw_name]
            name = prometheus_name(raw_name)
            emit_header(name, metric.help, "gauge")
            lines.append(f"{name} {_fmt(metric.value)}")
        for raw_name in sorted(self._histograms):
            metric = self._histograms[raw_name]
            name = prometheus_name(raw_name)
            emit_header(name, metric.help, "histogram")
            cumulative = metric.cumulative_counts()
            for boundary, count in zip(metric.buckets, cumulative):
                lines.append(
                    f'{name}_bucket{{le="{_fmt(boundary)}"}} {count}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + "\n"


#: Outcome suffixes of the scheduler's per-kind attempt counters
#: (``mr.<kind>.attempts.<outcome>``), with their help strings.  The
#: scheduler registers all of them for every run — a zero sample in the
#: Prometheus dump is a statement that the path was exercised zero
#: times, not that it does not exist.
ATTEMPT_OUTCOMES: dict[str, str] = {
    "failed": "attempts that raised (task failures and worker crashes)",
    "speculative": "speculative backup attempts launched",
    "timeout": "attempts abandoned after exceeding task_timeout_seconds",
    "worker_crash": "attempts lost to a crashed worker process",
}


def attempt_outcome_counter(
    registry: "MetricsRegistry", kind: str, outcome: str
) -> Counter:
    """The ``mr.<kind>.attempts.<outcome>`` counter of one registry."""
    return registry.counter(
        f"mr.{kind}.attempts.{outcome}",
        f"{kind} {ATTEMPT_OUTCOMES[outcome]}",
    )


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats without the '.0'."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def parse_prometheus_counters(text: str) -> dict[str, float]:
    """Parse plain counter/gauge samples back out of a text dump.

    Helper for tests that assert the dump agrees with the job counters;
    histogram series (``_bucket``/``_sum``/``_count``) are skipped.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#") or "{" in line:
            continue
        name, _, raw = line.partition(" ")
        if name.endswith(("_sum", "_count")):
            continue
        values[name] = float(raw)
    return values
