"""Observability layer: tracing spans, metrics, and trace export.

``repro.obs`` gives the engine eyes: where the paper reports *totals*
(Table 2's disk/CPU breakdown), this package records *where and when*
those bytes and CPU seconds happened.

* :mod:`repro.obs.trace` — a lightweight span tracer threaded through
  the scheduler, both executors, the map/reduce task phases, and the
  ``Shared`` structure.  Zero-cost when disabled: every call site holds
  a :data:`~repro.obs.trace.NULL_TRACER` whose spans are no-ops.
* :mod:`repro.obs.metrics` — a ``MetricsRegistry`` of counters, gauges
  and histograms with a Prometheus-text-format dump.  The engine
  re-derives the job's :class:`~repro.mr.counters.Counters` totals from
  the registry, so the two surfaces can never disagree.
* :mod:`repro.obs.export` — Chrome-trace-format JSON (loadable in
  Perfetto / ``chrome://tracing``) and a flat JSONL consumed by the
  ``repro trace`` CLI subcommand.
* :mod:`repro.obs.run_store` / :mod:`repro.obs.flightrecorder` — the
  persistent run ledger: every recorded run leaves a content-addressed
  directory under ``.repro/runs`` with its manifest, deterministic
  counter receipt, Prometheus dump, events and spans.
* :mod:`repro.obs.server` / :mod:`repro.obs.jobservice` — the
  ``repro serve`` HTTP service: ledger reads (``/metrics`` Prometheus
  scrape, ``/runs``, ``/healthz``) plus the job-submission write path
  (``POST /jobs`` into a bounded queue, executed by a worker pool with
  per-job flight recorders).
"""

from repro.obs.trace import (
    NULL_TRACER,
    JobTrace,
    NullTracer,
    SpanRecord,
    TraceCollector,
    Tracer,
    activated,
    clear_trace_collector,
    current_trace_collector,
    current_tracer,
    set_trace_collector,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.export import (
    chrome_trace,
    load_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flightrecorder import (
    FlightRecorder,
    clear_flight_recorder,
    current_flight_recorder,
    set_flight_recorder,
)
from repro.obs.jobservice import JobRecord, JobService
from repro.obs.run_store import RunRecord, RunStore, RunStoreError

__all__ = [
    "NULL_TRACER",
    "FlightRecorder",
    "JobRecord",
    "JobService",
    "JobTrace",
    "MetricsRegistry",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "NullTracer",
    "SpanRecord",
    "TraceCollector",
    "Tracer",
    "activated",
    "chrome_trace",
    "clear_trace_collector",
    "current_trace_collector",
    "current_tracer",
    "load_jsonl",
    "set_trace_collector",
    "write_chrome_trace",
    "write_jsonl",
]
