"""Wire encodings for Anti-Combining records (paper Sections 3, 4, 6.1).

Every record an Anti-Combining-enabled mapper emits carries an encoding
tag in its value component, so differently-encoded records can coexist
in one reduce task's input ("a flag is added to the encoded record's
value component to indicate which strategy was used", Section 6.1):

* ``(key, PlainValue(value))`` — the original record; the degenerate
  EagerSH case with an empty key set.
* ``(min_key, EagerValue(other_keys, value))`` — EagerSH: one record
  standing for ``(min_key, value)`` and ``(k, value)`` for every ``k``
  in ``other_keys``.  ``other_keys`` is a *list*, not a set, so a Map
  call emitting the same key/value pair twice stays correct.
* ``(min_key, LazyValue(input_key, input_value))`` — LazySH: the Map
  *input* record; the reducer re-executes Map to decode.

The three classes are registered as serde *extension types*, which
serialise as a single tag byte followed by their fields — so the
measurable overhead of a PLAIN record versus the original program is
exactly one byte, matching the paper's "additional bits ... needed to
flag the type of encoding" (Section 7.1).
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.mr import serde

PLAIN = 0
EAGER = 1
LAZY = 2


class EncodingError(ValueError):
    """Raised when an encoded value component is malformed."""


class PlainValue(NamedTuple):
    """An unshared record's value component (1 byte of overhead)."""

    value: Any


class EagerValue(NamedTuple):
    """An EagerSH value component for a same-value key group."""

    other_keys: list
    value: Any


class LazyValue(NamedTuple):
    """A LazySH value component holding the Map input record."""

    input_key: Any
    input_value: Any


serde.register_extension(PLAIN, PlainValue)
serde.register_extension(EAGER, EagerValue)
serde.register_extension(LAZY, LazyValue)


def plain_value(value: Any) -> PlainValue:
    """Encode an unshared record's value component."""
    return PlainValue(value)


def eager_value(other_keys: list, value: Any) -> EagerValue:
    """Encode an EagerSH value component for a same-value key group."""
    return EagerValue(list(other_keys), value)


def lazy_value(input_key: Any, input_value: Any) -> LazyValue:
    """Encode a LazySH value component holding the Map input record."""
    return LazyValue(input_key, input_value)


def tag_of(encoded: Any) -> int:
    """The encoding tag of a value component (validating its type)."""
    kind = type(encoded)
    if kind is PlainValue:
        return PLAIN
    if kind is EagerValue:
        if not isinstance(encoded.other_keys, list):
            raise EncodingError(f"malformed eager value: {encoded!r}")
        return EAGER
    if kind is LazyValue:
        return LAZY
    raise EncodingError(f"not an encoded value component: {encoded!r}")


def plain_payload(encoded: PlainValue) -> Any:
    """The original value of a PLAIN component."""
    return encoded.value


def eager_payload(encoded: EagerValue) -> tuple[list, Any]:
    """The ``(other_keys, value)`` of an EAGER component."""
    return encoded.other_keys, encoded.value


def lazy_payload(encoded: LazyValue) -> tuple[Any, Any]:
    """The ``(input_key, input_value)`` of a LAZY component."""
    return encoded.input_key, encoded.input_value


def encoded_record_size(key: Any, encoded: Any) -> int:
    """Serialised size in bytes of an encoded record."""
    return serde.record_size(key, encoded)


def decoded_pairs_of_eager(rep_key: Any, encoded: Any) -> list[tuple[Any, Any]]:
    """Expand an EAGER (or PLAIN) record into its original pairs."""
    tag = tag_of(encoded)
    if tag == PLAIN:
        return [(rep_key, encoded.value)]
    if tag == EAGER:
        pairs = [(rep_key, encoded.value)]
        pairs.extend((key, encoded.value) for key in encoded.other_keys)
        return pairs
    raise EncodingError("decoded_pairs_of_eager called on a LAZY record")
