"""Anti-Combining configuration: the paper's parameters ``T`` and ``C``.

``T`` (Section 6.1) bounds the CPU cost of LazySH re-execution:
``T = 0`` forces EagerSH everywhere (safe under non-determinism),
``T = inf`` lets the size-based choice run free.  ``C`` (Section 6.2)
controls whether the program's Combiner still runs in the map phase;
regardless of ``C``, the Combiner can be used inside ``Shared`` during
the reduce phase (Section 5, "Using Combine in the Reduce Phase").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class Strategy(enum.Enum):
    """Which encodings the AntiMapper may use.

    ``EAGER`` and ``LAZY`` are the pure strategies the paper plots
    separately in Figure 9; ``ADAPTIVE`` is the per-call, per-partition
    cost/size-based choice of Figure 7 (AdaptiveSH).
    """

    EAGER = "eager"
    LAZY = "lazy"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class AntiCombiningConfig:
    """All knobs of the Anti-Combining transformation."""

    #: The runtime cost threshold ``T`` in seconds.  If the estimated
    #: re-execution cost ``(map_cost + partition_cost) * num_partitions``
    #: of a Map call exceeds ``T``, LazySH is disabled for that call.
    threshold_t: float = math.inf

    #: The flag ``C``: keep the original Combiner in the map phase.
    #: ``False`` (the paper's usual setting when the Combiner is weak)
    #: removes it from the map phase but still allows it in ``Shared``.
    use_map_combiner: bool = False

    #: Apply the original Combiner inside ``Shared`` during the reduce
    #: phase (paper Section 5) — only relevant if the job has one.
    use_shared_combiner: bool = True

    #: Encoding strategy (pure EagerSH / pure LazySH / AdaptiveSH).
    strategy: Strategy = Strategy.ADAPTIVE

    #: Memory budget of the reduce-side ``Shared`` structure before it
    #: spills sorted runs to local disk.
    shared_memory_bytes: int = 4 * 1024 * 1024

    #: Merge the spill runs of ``Shared`` when their number exceeds
    #: this threshold (mirrors the map phase's merge factor).
    shared_merge_threshold: int = 10

    #: The paper makes the eager-vs-lazy decision *independently per
    #: partition* (Section 6.1: "the greater flexibility enables
    #: greater data reduction").  Setting this to False makes one
    #: decision for the whole Map call instead — the ablation
    #: ``benchmarks/bench_ablation_granularity.py`` quantifies the gap.
    per_partition_choice: bool = True

    def __post_init__(self) -> None:
        if self.threshold_t < 0:
            raise ValueError("threshold_t must be >= 0")
        if self.shared_memory_bytes < 1024:
            raise ValueError("shared_memory_bytes must be >= 1 KiB")
        if self.shared_merge_threshold < 2:
            raise ValueError("shared_merge_threshold must be >= 2")

    @property
    def lazy_allowed(self) -> bool:
        """Whether LazySH may ever be chosen under this configuration."""
        if self.strategy is Strategy.EAGER:
            return False
        if self.strategy is Strategy.LAZY:
            return True
        return self.threshold_t > 0
