"""Runtime bundle shared by the Anti-Combining wrapper classes.

The syntactic transformation (paper Section 6.1) replaces the job's
mapper/reducer/combiner factories with wrappers.  Those wrappers need
the *original* black boxes plus a snapshot of the job's partitioning
and ordering configuration; :class:`AntiRuntime` carries exactly that,
captured once at transform time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import AntiCombiningConfig
from repro.mr.api import Combiner, Mapper, Partitioner, Reducer
from repro.mr.comparators import Comparator
from repro.mr.cost import CostMeter


@dataclass(frozen=True)
class AntiRuntime:
    """Everything the Anti wrappers need from the original job."""

    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    combiner_factory: Callable[[], Combiner] | None
    partitioner: Partitioner
    num_reducers: int
    comparator: Comparator
    grouping_comparator: Comparator
    meter: CostMeter
    config: AntiCombiningConfig

    def get_partition(self, key) -> int:
        return self.partitioner.get_partition(key, self.num_reducers)
