"""The syntactic program transformation (paper Section 6.1).

``enable_anti_combining`` is the reproduction of the paper's rewrite:
it changes *only the statements that set the mapper, reducer and
combiner classes* of a job — replacing them with the Anti wrappers that
hold the original classes as black boxes — and records the
Anti-Combining parameters (``T``, ``C``, strategy, Shared sizing) on
the job.  The MapReduce engine itself is never modified, exactly as the
paper requires ("our approach can be implemented without modifying the
MapReduce environment itself").
"""

from __future__ import annotations

import math
from functools import partial

from repro.core.anti_combiner import AntiCombiner
from repro.core.anti_mapper import AntiMapper
from repro.core.anti_reducer import AntiReducer
from repro.core.config import AntiCombiningConfig, Strategy
from repro.core.runtime import AntiRuntime
from repro.mr.config import JobConf


def enable_anti_combining(
    job: JobConf,
    threshold_t: float = math.inf,
    use_map_combiner: bool = False,
    strategy: Strategy = Strategy.ADAPTIVE,
    use_shared_combiner: bool = True,
    shared_memory_bytes: int = 4 * 1024 * 1024,
    shared_merge_threshold: int = 10,
    per_partition_choice: bool = True,
) -> JobConf:
    """Return an Anti-Combining-enabled copy of ``job``.

    Parameters mirror the paper: ``threshold_t`` is the re-execution
    cost bound ``T`` in seconds (``0`` disables LazySH, ``inf`` allows
    free choice); ``use_map_combiner`` is the flag ``C`` (keep the
    original Combiner in the map phase); ``strategy`` can force the
    pure EagerSH / LazySH variants plotted in Figure 9.

    The original job object is left untouched, so both versions can run
    side by side in one experiment.
    """
    if job.anti is not None:
        raise ValueError("job already has Anti-Combining enabled")
    config = AntiCombiningConfig(
        threshold_t=threshold_t,
        use_map_combiner=use_map_combiner,
        use_shared_combiner=use_shared_combiner,
        strategy=strategy,
        shared_memory_bytes=shared_memory_bytes,
        shared_merge_threshold=shared_merge_threshold,
        per_partition_choice=per_partition_choice,
    )
    runtime = AntiRuntime(
        mapper_factory=job.mapper,
        reducer_factory=job.reducer,
        combiner_factory=job.combiner,
        partitioner=job.partitioner,
        num_reducers=job.num_reducers,
        comparator=job.comparator,
        grouping_comparator=job.effective_grouping_comparator,
        meter=job.cost_meter,
        config=config,
    )

    # partial (not lambda): the factories must pickle so transformed
    # jobs can run on the process executor.
    combiner = None
    if job.combiner is not None and use_map_combiner:
        combiner = partial(AntiCombiner, runtime)

    # In-node combining is force-disabled on transformed jobs: the
    # Anti-Combiner is stateful and partition-aware (not monoidal), and
    # the anti encoding already performs the cross-record sharing that
    # in-node combining would buy — re-combining across tasks would
    # corrupt the encoded components.
    return job.clone(
        mapper=partial(AntiMapper, runtime),
        reducer=partial(AntiReducer, runtime),
        combiner=combiner,
        innode_combining=False,
        anti=config,
        name=f"{job.name}+anti[{strategy.value}]",
    )
