"""The spill-time Anti-Combiner (paper Sections 6.1–6.2, flag ``C``).

When the user keeps the Combiner in the map phase (``C = 1``), the
syntactic transformation wraps it too.  The wrapped combiner *decodes*
the Anti-Combining-encoded records in the spill — "it decodes the
Anti-Combining encoded records, i.e., undoes Anti-Combining" — applies
the original Combine per decoded key group, and re-emits the combined
records tagged PLAIN.

This pays off exactly when the paper says it does: a highly effective
Combiner (WordCount) reads far fewer records because the map output was
encoded before it was buffered, and its output is small enough that
losing the encoding is irrelevant.  A weak Combiner merely undoes the
savings, which is why ``C = 0`` is the default.

One instance handles one (spill, partition) pair: the
:class:`~repro.mr.buffer.CombineRunner` brackets the partition's sorted
groups with ``setup``/``cleanup``, giving the decode loop a complete
ordered pass.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.core import encoding
from repro.core.anti_reducer import DecodeLoop
from repro.core.runtime import AntiRuntime
from repro.mr.api import Combiner, Context

#: Distinguishes the Shared spill files of concurrent combiner instances.
_instance_ids = itertools.count()


class AntiCombiner(Combiner):
    """Drop-in replacement for the original combiner class."""

    def __init__(self, runtime: AntiRuntime):
        self._runtime = runtime
        self._o_combiner: Combiner | None = None
        self._loop: DecodeLoop | None = None

    def setup(self, context: Context) -> None:
        runtime = self._runtime
        assert runtime.combiner_factory is not None
        self._o_combiner = runtime.combiner_factory()
        self._o_combiner.setup(context)

        def combine_target(
            key: Any, values: Iterator[Any], ctx: Context
        ) -> None:
            # Re-tag the original combiner's output as PLAIN records so
            # the reduce side can decode the (now unshared) stream.
            assert self._o_combiner is not None
            wrapped = ctx.with_sink(
                lambda k, v: ctx.write(k, encoding.plain_value(v))
            )
            self._o_combiner.reduce(key, values, wrapped)

        prefix = (
            f"{context.task_id}/combine-shared/{next(_instance_ids)}"
        )
        # The decode loop uses a Shared without an inner combiner (the
        # outer target already combines each group exactly once).
        loop_runtime = AntiRuntime(
            mapper_factory=runtime.mapper_factory,
            reducer_factory=runtime.reducer_factory,
            combiner_factory=None,
            partitioner=runtime.partitioner,
            num_reducers=runtime.num_reducers,
            comparator=runtime.comparator,
            grouping_comparator=runtime.grouping_comparator,
            meter=runtime.meter,
            config=runtime.config,
        )
        self._loop = DecodeLoop(
            runtime=loop_runtime,
            context=context,
            target=combine_target,
            shared_prefix=prefix,
        )

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        assert self._loop is not None, "setup() was not called"
        self._loop.process_group(key, values, context)

    def cleanup(self, context: Context) -> None:
        assert self._loop is not None and self._o_combiner is not None
        self._loop.drain_all(context)
        self._o_combiner.cleanup(context)
