"""Anti-Combining: the paper's contribution.

The package provides:

* the record encodings (plain / EagerSH / LazySH) — :mod:`repro.core.encoding`;
* the reduce-task ``Shared`` structure — :mod:`repro.core.shared`;
* the ``AntiMapper`` / ``AntiReducer`` / spill-time ``AntiCombiner``
  wrappers — :mod:`repro.core.anti_mapper`,
  :mod:`repro.core.anti_reducer`, :mod:`repro.core.anti_combiner`;
* the purely syntactic program transformation
  :func:`~repro.core.transform.enable_anti_combining`.
"""

from repro.core.config import AntiCombiningConfig, Strategy
from repro.core.crosscall import enable_cross_call_anti_combining
from repro.core.encoding import EncodingError
from repro.core.shared import Shared
from repro.core.transform import enable_anti_combining

__all__ = [
    "AntiCombiningConfig",
    "EncodingError",
    "Shared",
    "Strategy",
    "enable_anti_combining",
    "enable_cross_call_anti_combining",
]
