"""The AntiReducer: decoding and ordered re-delivery (Alg. 2/4, Fig. 8).

The AntiReducer wraps the original reducer.  For every reduce call on a
representative key it:

1. drains ``Shared`` of any groups that sort strictly before the
   current key (the paper's repeat-until loop), running the original
   Reduce on each;
2. decodes every incoming value component into ``Shared`` — EagerSH
   records expand into their key/value pairs, LazySH records re-execute
   the original Map and keep only the outputs assigned to this
   partition;
3. pops the current key's (fully decoded) group from ``Shared`` and
   runs the original Reduce on it.

``cleanup`` drains whatever is left in ``Shared`` (keys that only ever
appeared inside encoded value components) before calling the original
reducer's ``cleanup``.

:class:`DecodeLoop` implements these steps generically so the
spill-time Anti-Combiner (:mod:`repro.core.anti_combiner`) can reuse
them with the original Combiner as the target.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core import encoding
from repro.core.runtime import AntiRuntime
from repro.core.shared import Shared
from repro.mr import counters as C
from repro.mr import fastpath
from repro.mr.api import Context, Mapper, Reducer
from repro.obs.trace import current_tracer

ReduceFn = Callable[[Any, Iterator[Any], Context], None]

#: Cap on the batched tier's key→partition memo (cleared, not evicted,
#: when full — re-execution key sets are usually far smaller).
_PARTITION_MEMO_LIMIT = 1 << 16


class DecodeError(RuntimeError):
    """Decoding failed — usually a non-deterministic Map with LazySH."""


def _discard_sink(key: Any, value: Any) -> None:
    """Swallow emissions from lifecycle hooks of helper instances."""


class DecodeLoop:
    """The shared decode/drain machinery of AntiReducer and AntiCombiner."""

    def __init__(
        self,
        runtime: AntiRuntime,
        context: Context,
        target: ReduceFn,
        shared_prefix: str,
    ):
        if context.store is None:
            raise DecodeError("decoding requires a task-local store")
        if context.partition is None:
            raise DecodeError("decoding requires the task's partition number")
        self._runtime = runtime
        self._context = context
        self._target = target
        self._partition = context.partition
        self._tracer = current_tracer()
        # A private original-mapper instance for LazySH re-execution
        # (paper Fig. 8: "Decoding for LazySH calls o_mapper.map").
        self._o_mapper: Mapper = runtime.mapper_factory()
        self._o_mapper.setup(context.with_sink(_discard_sink))
        combiner = None
        if (
            runtime.combiner_factory is not None
            and runtime.config.use_shared_combiner
        ):
            combiner = runtime.combiner_factory()
            combiner.setup(context.with_sink(_discard_sink))
        self._shared_combiner = combiner
        # Batched tier: memoise key→partition for the LazySH
        # re-execution filter.  Legal under the tier's deterministic-
        # partitioner assumption (the same assumption LazySH decoding
        # itself rests on); these calls are unmetered framework work,
        # so the memo is pure wall-time.
        self._partition_memo: dict[Any, int] | None = (
            {} if fastpath.batch_enabled() else None
        )
        self._reexec_buffer: list[tuple[Any, Any]] = []
        self._reexec_capture: Context | None = None
        self.shared = Shared(
            comparator=runtime.comparator,
            grouping_comparator=runtime.grouping_comparator,
            store=context.store,
            counters=context.counters,
            memory_limit_bytes=runtime.config.shared_memory_bytes,
            merge_threshold=runtime.config.shared_merge_threshold,
            combiner=combiner,
            combine_context=context if combiner is not None else None,
            name_prefix=shared_prefix,
        )

    # -- the three steps ---------------------------------------------------
    def drain_below(self, key: Any, context: Context) -> None:
        """Reduce every Shared group sorting strictly before ``key``."""
        grouping = self._runtime.grouping_comparator
        shared = self.shared
        target = self._target
        if fastpath.enabled() and grouping.is_natural:
            # ``not (alt < key)`` is exactly the natural comparator's
            # ``cmp(alt, key) >= 0`` — one rich comparison instead of a
            # Python call per drained group.
            while True:
                alt_key = shared.peek_min_key()
                if alt_key is None or not (alt_key < key):
                    return
                rep_key, values = shared.pop_min_key_values()
                target(rep_key, iter(values), context)
        while True:
            alt_key = shared.peek_min_key()
            if alt_key is None or grouping.cmp(alt_key, key) >= 0:
                return
            rep_key, values = shared.pop_min_key_values()
            target(rep_key, iter(values), context)

    def decode_values(
        self, rep_key: Any, values: Iterator[Any], context: Context
    ) -> None:
        """Decode one group's encoded value components into Shared.

        The whole group decode — including every ``Shared.add`` insert
        it performs — is one ``shared.decode`` span, so per-record
        inserts are aggregated rather than traced individually.
        """
        with self._tracer.span(
            "shared.decode", category="shared"
        ) as span:
            components = self._decode_components(rep_key, values, context)
            span.set(components=components)

    def _decode_components(
        self, rep_key: Any, values: Iterator[Any], context: Context
    ) -> int:
        shared = self.shared
        components = 0
        # The tag dispatch is inlined (one ``type`` check per component
        # instead of a ``tag_of`` call plus payload accessors); the
        # malformed-eager validation ``tag_of`` performs is kept.
        plain, eager, lazy = (
            encoding.PlainValue, encoding.EagerValue, encoding.LazyValue
        )
        for component in values:
            components += 1
            kind = type(component)
            if kind is plain:
                shared.add(rep_key, component.value)
            elif kind is eager:
                other_keys = component.other_keys
                if not isinstance(other_keys, list):
                    raise encoding.EncodingError(
                        f"malformed eager value: {component!r}"
                    )
                shared.add_group(rep_key, other_keys, component.value)
            elif kind is lazy:
                self._reexecute_map(
                    component.input_key, component.input_value, context
                )
            else:
                raise encoding.EncodingError(
                    f"not an encoded value component: {component!r}"
                )
        return components

    def _reexecute_map(
        self, input_key: Any, input_value: Any, context: Context
    ) -> None:
        """Run the original Map, keeping this partition's outputs."""
        runtime = self._runtime
        # One capture context and emission buffer per loop, reused
        # across re-executions (drained into Shared before returning).
        emitted = self._reexec_buffer
        emitted.clear()
        capture = self._reexec_capture
        if capture is None:
            capture = context.with_capture(emitted)
            self._reexec_capture = capture
        self._o_mapper.map(input_key, input_value, capture)
        context.counters.add(C.ANTI_REDUCE_MAP_REEXECUTIONS)
        matched = False
        memo = self._partition_memo
        if memo is not None:
            shared_add = self.shared.add
            get_partition = runtime.get_partition
            memo_get = memo.get
            partition = self._partition
            for key, value in emitted:
                try:
                    key_partition = memo_get(key)
                    if key_partition is None:
                        key_partition = get_partition(key)
                        if len(memo) >= _PARTITION_MEMO_LIMIT:
                            memo.clear()
                        memo[key] = key_partition
                except TypeError:  # unhashable key
                    key_partition = get_partition(key)
                if key_partition == partition:
                    shared_add(key, value)
                    matched = True
        else:
            for key, value in emitted:
                if runtime.get_partition(key) == self._partition:
                    self.shared.add(key, value)
                    matched = True
        if not matched:
            raise DecodeError(
                "LazySH re-execution produced no record for partition "
                f"{self._partition}; the Map or Partition function is "
                "non-deterministic — set T=0 (Strategy.EAGER) for this job"
            )

    def reduce_current(self, rep_key: Any, context: Context) -> None:
        """Run the target on the current (decoded) group."""
        grouping = self._runtime.grouping_comparator
        min_key = self.shared.peek_min_key()
        if fastpath.enabled() and grouping.is_natural:
            mismatch = min_key is None or (
                min_key < rep_key or min_key > rep_key
            )
        else:
            mismatch = (
                min_key is None or grouping.cmp(min_key, rep_key) != 0
            )
        if mismatch:
            raise DecodeError(
                f"decoded group for key {rep_key!r} is missing; the Map "
                "or Partition function is non-deterministic"
            )
        popped_key, decoded = self.shared.pop_min_key_values()
        self._target(popped_key, iter(decoded), context)

    def process_group(
        self, rep_key: Any, values: Iterator[Any], context: Context
    ) -> None:
        """Steps 1–3 for one incoming encoded group."""
        self.drain_below(rep_key, context)
        self.decode_values(rep_key, values, context)
        self.reduce_current(rep_key, context)

    def drain_all(self, context: Context) -> None:
        """Reduce every remaining Shared group (task cleanup)."""
        for rep_key, values in self.shared.drain():
            self._target(rep_key, iter(values), context)
        self._o_mapper.cleanup(context.with_sink(_discard_sink))
        if self._shared_combiner is not None:
            self._shared_combiner.cleanup(context.with_sink(_discard_sink))


class AntiReducer(Reducer):
    """Drop-in replacement for the original reducer class (Fig. 8)."""

    def __init__(self, runtime: AntiRuntime):
        self._runtime = runtime
        self._o_reducer: Reducer | None = None
        self._loop: DecodeLoop | None = None

    def setup(self, context: Context) -> None:
        self._o_reducer = self._runtime.reducer_factory()
        self._o_reducer.setup(context)
        self._loop = DecodeLoop(
            runtime=self._runtime,
            context=context,
            target=self._o_reducer.reduce,
            shared_prefix=f"{context.task_id}/shared",
        )

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        assert self._loop is not None, "setup() was not called"
        self._loop.process_group(key, values, context)

    def cleanup(self, context: Context) -> None:
        assert self._loop is not None and self._o_reducer is not None
        self._loop.drain_all(context)
        self._o_reducer.cleanup(context)
