"""Cross-call Anti-Combining: the paper's stated future work.

Section 9: *"In our future work, we plan to explore extensions that
allow optimization not only for the input of a single Map call, but
also across all Map calls in the same map task."*

This module implements that extension for EagerSH.  The
:class:`CrossCallAntiMapper` buffers the original Map output of many
consecutive Map calls (bounded by a byte window) and groups records by
value *across calls* before encoding, so e.g. two occurrences of the
same query in one Query-Suggestion split share their value component
even though they came from different Map calls.

Only EagerSH can cross call boundaries: a LazySH record stands for one
Map *input*, which is inherently per-call.  Decoding is unchanged —
EagerSH records are position-independent, so the stock
:class:`~repro.core.anti_reducer.AntiReducer` handles the output, and
the transformation remains purely syntactic.

The correctness requirement is the same as for per-call EagerSH: the
representative key is the minimal key of its group, so every other key
is decoded into ``Shared`` before its Reduce call runs.
"""

from __future__ import annotations

from functools import partial
from typing import Any

from repro.core import encoding
from repro.core.anti_mapper import _value_group_id
from repro.core.anti_reducer import AntiReducer
from repro.core.config import AntiCombiningConfig, Strategy
from repro.core.runtime import AntiRuntime
from repro.mr import counters as C
from repro.mr import serde
from repro.mr.api import Context, Mapper
from repro.mr.config import JobConf

#: Default window: how many (serialised) bytes of original Map output
#: are buffered before the cross-call groups are encoded and flushed.
DEFAULT_WINDOW_BYTES = 64 * 1024


class CrossCallAntiMapper(Mapper):
    """EagerSH encoding over a sliding window of Map calls."""

    def __init__(self, runtime: AntiRuntime, window_bytes: int):
        if window_bytes < 1024:
            raise ValueError("window_bytes must be >= 1 KiB")
        self._runtime = runtime
        self._window_bytes = window_bytes
        self._o_mapper: Mapper | None = None
        # partition -> value_id -> (value, [keys...])
        self._groups: dict[int, dict[Any, tuple[Any, list]]] = {}
        self._buffered_bytes = 0

    # -- lifecycle -------------------------------------------------------
    def setup(self, context: Context) -> None:
        self._o_mapper = self._runtime.mapper_factory()
        self._o_mapper.setup(context.with_sink(self._make_sink(context)))

    def cleanup(self, context: Context) -> None:
        assert self._o_mapper is not None
        self._o_mapper.cleanup(context.with_sink(self._make_sink(context)))
        self._flush(context)

    def map(self, key: Any, value: Any, context: Context) -> None:
        assert self._o_mapper is not None, "setup() was not called"
        capture = context.with_sink(self._make_sink(context))
        self._o_mapper.map(key, value, capture)
        if self._buffered_bytes >= self._window_bytes:
            self._flush(context)

    # -- windowed grouping -------------------------------------------------
    def _make_sink(self, context: Context):
        def sink(out_key: Any, out_value: Any) -> None:
            self._absorb(out_key, out_value, context)

        return sink

    def _absorb(self, out_key: Any, out_value: Any, context: Context) -> None:
        runtime = self._runtime
        partition = runtime.get_partition(out_key)
        groups = self._groups.setdefault(partition, {})
        value_id = _value_group_id(out_value)
        group = groups.get(value_id)
        if group is not None:
            group[1].append(out_key)
            self._buffered_bytes += serde.approx_size(out_key)
        else:
            groups[value_id] = (out_value, [out_key])
            self._buffered_bytes += serde.approx_size(
                out_key
            ) + serde.approx_size(out_value)

    def _flush(self, context: Context) -> None:
        """Encode and emit every buffered group, in key order."""
        comparator = self._runtime.comparator
        counters = context.counters
        for partition in sorted(self._groups):
            encoded: list[tuple[Any, Any]] = []
            for out_value, keys in self._groups[partition].values():
                ordered = comparator.sorted(keys)
                rep_key, other_keys = ordered[0], ordered[1:]
                if other_keys:
                    component = encoding.eager_value(other_keys, out_value)
                    counters.add(C.ANTI_EAGER_RECORDS)
                else:
                    component = encoding.plain_value(out_value)
                    counters.add(C.ANTI_PLAIN_RECORDS)
                encoded.append((rep_key, component))
            if comparator.is_natural:
                encoded.sort(key=lambda record: record[0])
            else:
                key_fn = comparator.key_fn()
                encoded.sort(key=lambda record: key_fn(record[0]))
            for rep_key, component in encoded:
                context.write(rep_key, component)
        self._groups = {}
        self._buffered_bytes = 0


def enable_cross_call_anti_combining(
    job: JobConf,
    window_bytes: int = DEFAULT_WINDOW_BYTES,
    use_shared_combiner: bool = True,
    shared_memory_bytes: int = 4 * 1024 * 1024,
) -> JobConf:
    """Enable the cross-call (task-scoped) EagerSH extension on ``job``.

    Like :func:`~repro.core.transform.enable_anti_combining`, the
    rewrite is purely syntactic; the reduce side uses the standard
    AntiReducer.  The map-phase Combiner is always removed (``C = 0``):
    it would decode and re-sort the window's groups anyway.
    """
    if job.anti is not None:
        raise ValueError("job already has Anti-Combining enabled")
    if window_bytes < 1024:
        raise ValueError("window_bytes must be >= 1 KiB")
    config = AntiCombiningConfig(
        strategy=Strategy.EAGER,
        threshold_t=0.0,
        use_map_combiner=False,
        use_shared_combiner=use_shared_combiner,
        shared_memory_bytes=shared_memory_bytes,
    )
    runtime = AntiRuntime(
        mapper_factory=job.mapper,
        reducer_factory=job.reducer,
        combiner_factory=job.combiner,
        partitioner=job.partitioner,
        num_reducers=job.num_reducers,
        comparator=job.comparator,
        grouping_comparator=job.effective_grouping_comparator,
        meter=job.cost_meter,
        config=config,
    )
    return job.clone(
        mapper=partial(CrossCallAntiMapper, runtime, window_bytes),
        reducer=partial(AntiReducer, runtime),
        combiner=None,
        anti=config,
        name=f"{job.name}+anti[cross-call]",
    )
