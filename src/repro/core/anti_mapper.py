"""The AntiMapper: per-call, per-partition adaptive encoding (Fig. 7).

The AntiMapper wraps the original mapper as a black box.  Each ``map``
call runs the original Map through an intercepting context, measures
its cost and the cost of partitioning its output, and then encodes the
output per partition:

* **Strategy EAGER** — always EagerSH (group by value within the
  partition; one record per group).
* **Strategy LAZY** — always LazySH (one record per partition holding
  the Map input).
* **Strategy ADAPTIVE** — the paper's rule: if
  ``(map_cost + partition_cost) * num_partitions > T`` the call is too
  expensive to re-execute, so EagerSH is used everywhere; otherwise,
  per partition, whichever of the EagerSH encoding and the LazySH
  record is smaller (in serialised bytes) wins.

EagerSH groups with no sharing degenerate to PLAIN records — the
original record plus an encoding tag (paper Section 6.1: "the original
program's unencoded output is a special case of EagerSH").

CPU accounting note: the engine meters the whole (wrapped) ``map``
call, so everything here — the original Map, the partition calls, the
grouping — is charged to map CPU exactly once.  The internal meter
measurements feed only the threshold decision.
"""

from __future__ import annotations

from typing import Any

from repro.core import encoding
from repro.core.config import Strategy
from repro.core.runtime import AntiRuntime
from repro.mr import counters as C
from repro.mr import fastpath, serde
from repro.mr.api import Context, Mapper

#: Cap on the batched tier's key→partition memo (cleared when full).
_PARTITION_MEMO_LIMIT = 1 << 16


def _value_group_id(value: Any) -> Any:
    """Dictionary identity for grouping records *by value*.

    Values must group together exactly when their serialised forms are
    identical.  Plain ``==`` is too coarse in Python (``1 == 1.0 ==
    True`` but they serialise differently), so scalars are keyed by
    ``(type, value)``; strings/bytes are safe as-is; everything else
    (containers, unhashables) falls back to the serialised bytes.
    """
    kind = type(value)
    if kind is str or kind is bytes:
        return value
    if kind is int or kind is float or kind is bool:
        return (kind, value)
    return serde.encode(value)


class AntiMapper(Mapper):
    """Drop-in replacement for the original mapper class."""

    def __init__(self, runtime: AntiRuntime):
        self._runtime = runtime
        self._o_mapper: Mapper | None = None
        # Batched tier: memoise key→partition across map calls.  Legal
        # under the tier's deterministic-partitioner assumption (the
        # same one LazySH decoding rests on); the calls it skips are
        # the unmetered per-record ones — the metered first-record
        # probe that feeds the threshold rule always runs.
        self._partition_memo: dict[Any, int] | None = (
            {} if fastpath.batch_enabled() else None
        )
        self._emit_buffer: list[tuple[Any, Any]] = []
        self._capture: Context | None = None

    # -- lifecycle -------------------------------------------------------
    def setup(self, context: Context) -> None:
        self._o_mapper = self._runtime.mapper_factory()
        self._passthrough(self._o_mapper.setup, context)

    def cleanup(self, context: Context) -> None:
        assert self._o_mapper is not None
        self._passthrough(self._o_mapper.cleanup, context)

    def _passthrough(self, fn, context: Context) -> None:
        """Run a lifecycle hook, forwarding any emissions as PLAIN.

        Records emitted outside a ``map`` call (e.g. by the in-mapper
        combining pattern's ``cleanup``) have no sharing context, so
        they are tagged PLAIN and passed through unencoded.
        """
        emitted: list[tuple[Any, Any]] = []
        capture = context.with_sink(lambda k, v: emitted.append((k, v)))
        fn(capture)
        for key, value in emitted:
            context.counters.add(C.ANTI_PLAIN_RECORDS)
            context.write(key, encoding.plain_value(value))

    # -- the adaptive map ------------------------------------------------
    def map(self, key: Any, value: Any, context: Context) -> None:
        assert self._o_mapper is not None, "setup() was not called"
        runtime = self._runtime
        # One capture context and emission buffer per task, reused
        # across map calls (the buffer is drained into per-partition
        # lists below before the next call can run).
        emitted = self._emit_buffer
        emitted.clear()
        capture = self._capture
        if capture is None or capture.counters is not context.counters:
            capture = context.with_capture(emitted)
            self._capture = capture
        _, map_cost = runtime.meter.measure(
            self._o_mapper.map, key, value, capture
        )
        if not emitted:
            return

        # Partition the original output.  The getPartition cost is
        # measured on the first call and extrapolated, exactly the
        # granularity of Figure 7's "cost of partition call".
        get_partition = runtime.partitioner.get_partition
        num_reducers = runtime.num_reducers
        by_partition: dict[int, list[tuple[Any, Any]]] = {}
        first_key = emitted[0][0]
        first_partition, single_cost = runtime.meter.measure(
            get_partition, first_key, num_reducers
        )
        partition_cost = single_cost * len(emitted)
        by_partition[first_partition] = [emitted[0]]
        memo = self._partition_memo
        by_partition_get = by_partition.get
        if memo is None:
            for record in emitted[1:]:
                partition = get_partition(record[0], num_reducers)
                bucket = by_partition_get(partition)
                if bucket is None:
                    by_partition[partition] = [record]
                else:
                    bucket.append(record)
        else:
            memo_get = memo.get
            for record in emitted[1:]:
                record_key = record[0]
                try:
                    partition = memo_get(record_key)
                    if partition is None:
                        partition = get_partition(record_key, num_reducers)
                        if len(memo) >= _PARTITION_MEMO_LIMIT:
                            memo.clear()
                        memo[record_key] = partition
                except TypeError:  # unhashable key
                    partition = get_partition(record_key, num_reducers)
                bucket = by_partition_get(partition)
                if bucket is None:
                    by_partition[partition] = [record]
                else:
                    bucket.append(record)

        use_lazy_allowed = self._lazy_allowed(
            map_cost, partition_cost, len(by_partition)
        )
        config = self._runtime.config
        if (
            config.strategy is Strategy.ADAPTIVE
            and not config.per_partition_choice
        ):
            self._encode_call_level(
                context, key, value, by_partition, use_lazy_allowed
            )
            return
        for partition in sorted(by_partition):
            records = by_partition[partition]
            self._encode_partition(
                context, key, value, records, use_lazy_allowed
            )

    def _lazy_allowed(
        self, map_cost: float, partition_cost: float, num_partitions: int
    ) -> bool:
        """Apply the threshold rule of Figure 7 for this Map call."""
        config = self._runtime.config
        if config.strategy is Strategy.EAGER:
            return False
        if config.strategy is Strategy.LAZY:
            return True
        reexecution_cost = (map_cost + partition_cost) * num_partitions
        return reexecution_cost <= config.threshold_t

    def _encode_call_level(
        self,
        context: Context,
        input_key: Any,
        input_value: Any,
        by_partition: dict[int, list[tuple[Any, Any]]],
        lazy_allowed: bool,
    ) -> None:
        """Ablation mode: one eager-vs-lazy decision for the whole call.

        Used when ``per_partition_choice`` is off; compares the *total*
        encoded sizes across all partitions and applies the winner
        uniformly, instead of the paper's finer per-partition choice.
        """
        eager_by_partition = {
            partition: self._eager_encode(records)
            for partition, records in by_partition.items()
        }
        if lazy_allowed:
            total_eager = sum(
                serde.approx_size(rep) + serde.approx_size(component)
                for encoded in eager_by_partition.values()
                for rep, component in encoded
            )
            lazy_component = encoding.lazy_value(input_key, input_value)
            total_lazy = 0
            for records in by_partition.values():
                min_key = self._runtime.comparator.min(
                    key for key, _ in records
                )
                total_lazy += serde.approx_size(min_key) + serde.approx_size(
                    lazy_component
                )
            if total_lazy < total_eager:
                for partition in sorted(by_partition):
                    self._emit_lazy(
                        context, input_key, input_value,
                        by_partition[partition],
                    )
                return
        for partition in sorted(eager_by_partition):
            self._emit_eager(context, eager_by_partition[partition])

    def _encode_partition(
        self,
        context: Context,
        input_key: Any,
        input_value: Any,
        records: list[tuple[Any, Any]],
        lazy_allowed: bool,
    ) -> None:
        """Emit the chosen encoding of one partition's output records."""
        runtime = self._runtime
        config = runtime.config
        counters = context.counters

        if config.strategy is Strategy.LAZY:
            self._emit_lazy(context, input_key, input_value, records)
            return

        eager_records = self._eager_encode(records)
        if config.strategy is Strategy.EAGER or not lazy_allowed:
            self._emit_eager(context, eager_records)
            return

        # AdaptiveSH: compare (estimated) serialised sizes, eager vs
        # lazy.  The estimate tracks the exact size within a few bytes
        # at a fraction of the cost of a full serialisation pass.
        eager_size = sum(
            serde.approx_size(rep_key) + serde.approx_size(enc_value)
            for rep_key, enc_value in eager_records
        )
        min_key = runtime.comparator.min(key for key, _ in records)
        lazy_record = (
            min_key,
            encoding.lazy_value(input_key, input_value),
        )
        lazy_size = serde.approx_size(min_key) + serde.approx_size(
            lazy_record[1]
        )
        if eager_size < lazy_size:
            self._emit_eager(context, eager_records)
        else:
            counters.add(C.ANTI_LAZY_RECORDS)
            context.write(*lazy_record)

    def _eager_encode(
        self, records: list[tuple[Any, Any]]
    ) -> list[tuple[Any, tuple]]:
        """EagerSH-encode one partition's records (Algorithm 1).

        Records are grouped by value (via their serialised bytes, so
        unhashable values work); each group becomes one record keyed by
        its minimal key, carrying the remaining keys in the value
        component.  Groups are emitted in representative-key order so
        output is deterministic.
        """
        comparator = self._runtime.comparator
        groups: dict[Any, tuple[Any, list[Any]]] = {}
        for out_key, out_value in records:
            group_id = _value_group_id(out_value)
            group = groups.get(group_id)
            if group is not None:
                group[1].append(out_key)
            else:
                groups[group_id] = (out_value, [out_key])
        encoded: list[tuple[Any, tuple]] = []
        for out_value, keys in groups.values():
            ordered = comparator.sorted(keys)
            rep_key, other_keys = ordered[0], ordered[1:]
            if other_keys:
                enc_value = encoding.eager_value(other_keys, out_value)
            else:
                enc_value = encoding.plain_value(out_value)
            encoded.append((rep_key, enc_value))
        if len(encoded) > 1:
            if comparator.is_natural:
                encoded.sort(key=lambda rec: rec[0])
            else:
                key_fn = comparator.key_fn()
                encoded.sort(key=lambda rec: key_fn(rec[0]))
        return encoded

    def _emit_eager(
        self, context: Context, eager_records: list[tuple[Any, tuple]]
    ) -> None:
        for rep_key, enc_value in eager_records:
            if encoding.tag_of(enc_value) == encoding.PLAIN:
                context.counters.add(C.ANTI_PLAIN_RECORDS)
            else:
                context.counters.add(C.ANTI_EAGER_RECORDS)
            context.write(rep_key, enc_value)

    def _emit_lazy(
        self,
        context: Context,
        input_key: Any,
        input_value: Any,
        records: list[tuple[Any, Any]],
    ) -> None:
        min_key = self._runtime.comparator.min(key for key, _ in records)
        context.counters.add(C.ANTI_LAZY_RECORDS)
        context.write(
            min_key, encoding.lazy_value(input_key, input_value)
        )
