"""The reduce-task-level ``Shared`` data structure (paper Section 5).

``Shared`` carries decoded key/value pairs from the Reduce call that
decoded them to the later Reduce calls that need them.  It maintains:

* a **min-heap** over keys, so ``peek_min_key`` is O(1) and pops happen
  in ascending key order (Reduce-call order);
* an **in-memory hash table** mapping keys to their value lists;
* **sorted spill runs** on the task's local disk: when the memory
  budget is exceeded, the in-memory content is drained in key order to
  a run, and runs are merged when their number exceeds the merge
  threshold — mirroring the map phase's spill/merge machinery.  Because
  pops always take the *minimal* key, runs are only ever read by
  buffered sequential scans, never random access.

When the job has a Combiner, ``Shared`` can fold values per key as they
are added ("Using Combine in the Reduce Phase"), which shrinks memory
and often avoids spilling entirely — the effect Table 2's
``AdaptiveSH-CB`` row reports.

Keys are identified by value (hashable keys directly, unhashable ones
by their serialised bytes), so any serialisable key works; key *order*
always comes from the job's sort comparator and key *grouping* from the
grouping comparator (Section 6.1's grouping comparator requirement).
The grouping comparator must be a consistent coarsening of the sort
comparator — and keys that compare equal with ``==`` must be
grouping-equal — as in Hadoop.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.mr import counters as C
from repro.mr import fastpath, serde
from repro.mr.api import Combiner, Context
from repro.mr.comparators import Comparator
from repro.mr.counters import Counters
from repro.mr.merge import merge_runs
from repro.mr.storage import LocalStore, SpillWriter
from repro.obs.trace import current_tracer


class _Entry:
    """In-memory state for one key."""

    __slots__ = ("key", "values", "nbytes")

    def __init__(self, key: Any, values: list, nbytes: int):
        self.key = key
        self.values = values
        self.nbytes = nbytes


class _Run:
    """Sequential reader over one sorted spill run, with a head record."""

    def __init__(self, records: Iterator[tuple[Any, Any]], name: str):
        self._records = records
        self.name = name
        self._head: tuple[Any, Any] | None = None
        self._advance()

    def _advance(self) -> None:
        self._head = next(self._records, None)

    @property
    def head_key(self) -> Any:
        return None if self._head is None else self._head[0]

    @property
    def exhausted(self) -> bool:
        return self._head is None

    def pop_group(
        self, rep_key: Any, grouping: Comparator, natural: bool = False
    ) -> list[tuple[Any, Any]]:
        """Pop all leading records grouping-equal to ``rep_key``.

        With ``natural`` the equality test is inlined as
        ``not (a < b or a > b)`` — exactly when a natural grouping
        comparator returns 0 — skipping a Python call per record.
        """
        popped: list[tuple[Any, Any]] = []
        if natural:
            while self._head is not None:
                head_key = self._head[0]
                if head_key < rep_key or head_key > rep_key:
                    break
                popped.append(self._head)
                self._advance()
            return popped
        while self._head is not None and grouping.cmp(self._head[0], rep_key) == 0:
            popped.append(self._head)
            self._advance()
        return popped

    def drain(self) -> Iterator[tuple[Any, Any]]:
        """Yield every remaining record (used when merging runs)."""
        while self._head is not None:
            record = self._head
            self._advance()
            yield record


class Shared:
    """Decoded-record buffer shared by all Reduce calls of one task."""

    def __init__(
        self,
        comparator: Comparator,
        grouping_comparator: Comparator,
        store: LocalStore,
        counters: Counters,
        memory_limit_bytes: int = 4 * 1024 * 1024,
        merge_threshold: int = 10,
        combiner: Combiner | None = None,
        combine_context: Context | None = None,
        name_prefix: str = "shared",
        combine_batch_size: int = 16,
    ):
        if combiner is not None and combine_context is None:
            raise ValueError("a combiner requires a combine_context")
        if combine_batch_size < 2:
            raise ValueError("combine_batch_size must be >= 2")
        self._comparator = comparator
        self._grouping = grouping_comparator
        self._store = store
        self._counters = counters
        self._memory_limit = memory_limit_bytes
        self._merge_threshold = merge_threshold
        self._combiner = combiner
        self._combine_context = combine_context
        self._combine_batch_size = combine_batch_size
        self._name_prefix = name_prefix
        self._key_fn: Callable[[Any], Any] = comparator.key_fn()
        # Fast paths: with a natural sort comparator the heap holds raw
        # keys (a cmp_to_key wrapper around the natural cmp orders and
        # ties exactly like the key itself, so heap pop order is
        # identical); a natural grouping comparator unlocks inline
        # group-equality tests.  Both are gated on the process-wide
        # toggle so the invariance tests can run either way.
        self._fast_keys = fastpath.enabled() and comparator.is_natural
        self._fast_group = (
            fastpath.enabled() and grouping_comparator.is_natural
        )
        #: Raw keys when ``_fast_keys``, else cmp_to_key wrappers
        #: (``.obj`` is the key).
        self._heap: list[Any] = []
        self._table: dict[Any, _Entry] = {}
        self._mem_bytes = 0
        self._runs: list[_Run] = []
        self._spill_count = 0
        self._spilled_records = 0
        # Captured once: Shared lives and dies inside one task attempt,
        # whose body activated the tracer (or left the no-op default).
        self._tracer = current_tracer()

    @staticmethod
    def _key_id(key: Any) -> Any:
        """Hash-table identity for a key.

        Hashable keys are used directly; unhashable (e.g. list-valued)
        keys fall back to their serialised bytes.
        """
        try:
            hash(key)
        except TypeError:
            return serde.encode(key)
        return key

    # -- inserting -------------------------------------------------------
    def add(self, key: Any, value: Any) -> None:
        """Store one decoded pair (paper's ``Shared.add``)."""
        # ``2 + len`` is exactly ``serde._approx_sized`` — the str case
        # is inlined because add() runs once per decoded pair and str
        # keys/values dominate every workload in the suite.
        size = (2 + len(key)) if type(key) is str else serde.approx_size(key)
        size += (
            (2 + len(value))
            if type(value) is str
            else serde.approx_size(value)
        )
        self._add_sized(key, value, size)

    def add_group(self, rep_key: Any, other_keys: list, value: Any) -> None:
        """Insert one decoded EagerSH group: ``value`` under every key.

        Equivalent to ``add(rep_key, value)`` followed by ``add(k,
        value)`` for each ``k`` in ``other_keys`` — the shared value's
        size estimate is just computed once instead of per key.
        """
        value_size = (
            (2 + len(value))
            if type(value) is str
            else serde.approx_size(value)
        )
        add_sized = self._add_sized
        add_sized(
            rep_key,
            value,
            (
                (2 + len(rep_key))
                if type(rep_key) is str
                else serde.approx_size(rep_key)
            )
            + value_size,
        )
        for key in other_keys:
            add_sized(
                key,
                value,
                (
                    (2 + len(key))
                    if type(key) is str
                    else serde.approx_size(key)
                )
                + value_size,
            )

    def _add_sized(self, key: Any, value: Any, size: int) -> None:
        # Single-hash lookup: probe the table with the raw key directly
        # (``dict.get`` raises TypeError for unhashable keys, exactly
        # the case ``_key_id`` serialises) instead of hashing once in
        # ``_key_id`` and again in the lookup.
        table = self._table
        try:
            entry = table.get(key)
            key_id = key
        except TypeError:
            key_id = serde.encode(key)
            entry = table.get(key_id)
        if entry is None:
            self._table[key_id] = _Entry(key, [value], size)
            heapq.heappush(
                self._heap, key if self._fast_keys else self._key_fn(key)
            )
            self._mem_bytes += size
        else:
            entry.values.append(value)
            entry.nbytes += size
            self._mem_bytes += size
            if (
                self._combiner is not None
                and len(entry.values) >= self._combine_batch_size
            ):
                self._combine_entry(entry)
        if self._mem_bytes > self._memory_limit:
            if self._combiner is not None:
                # Combine everything first; that alone often frees
                # enough memory to avoid the spill (Section 5).
                self._combine_all()
            if self._mem_bytes > self._memory_limit:
                self._spill()

    def _combine_entry(self, entry: _Entry) -> None:
        """Fold one entry's value list with the original Combiner.

        If the Combiner emits exactly one record whose key stays in the
        same group, the entry keeps the single combined value;
        otherwise the raw values are kept (the Combiner contract was
        violated, so combining is skipped for safety).  Folding runs in
        batches rather than per add — like Hadoop's in-memory combine —
        so the Combiner cost stays amortised.
        """
        assert self._combine_context is not None
        if len(entry.values) < 2:
            return
        emitted: list[tuple[Any, Any]] = []
        capture = self._combine_context.with_sink(
            lambda k, v: emitted.append((k, v))
        )
        self._combiner.reduce(entry.key, iter(entry.values), capture)
        if (
            len(emitted) != 1
            or self._grouping.cmp(emitted[0][0], entry.key) != 0
        ):
            return
        old_bytes = entry.nbytes
        entry.values = [emitted[0][1]]
        entry.nbytes = serde.approx_size(entry.key) + serde.approx_size(
            entry.values[0]
        )
        self._mem_bytes += entry.nbytes - old_bytes

    def _combine_all(self) -> None:
        """Fold every multi-value entry (pre-spill compaction)."""
        for entry in self._table.values():
            if len(entry.values) > 1:
                self._combine_entry(entry)

    # -- reading ---------------------------------------------------------
    def peek_min_key(self) -> Any:
        """The minimal stored key, or ``None`` when empty."""
        if self._fast_keys and not self._runs:
            # Common case (nothing spilled): the heap top is the answer.
            return self._heap[0] if self._heap else None
        best: Any = None
        have_best = False
        if self._heap:
            best = self._heap[0] if self._fast_keys else self._heap[0].obj
            have_best = True
        if self._fast_keys:
            for run in self._runs:
                if run.exhausted:
                    continue
                if not have_best or run.head_key < best:
                    best = run.head_key
                    have_best = True
            return best if have_best else None
        for run in self._runs:
            if run.exhausted:
                continue
            if not have_best or self._comparator.cmp(run.head_key, best) < 0:
                best = run.head_key
                have_best = True
        return best if have_best else None

    def pop_min_key_values(self) -> tuple[Any, list]:
        """Remove and return ``(min_key, values)`` for the minimal group.

        All stored keys grouping-equal to the minimal key are removed;
        their values are returned in sort-key order (the order the
        original reduce call would have seen under secondary sort).
        """
        rep_key = self.peek_min_key()
        if rep_key is None:
            raise KeyError("pop_min_key_values on empty Shared")
        collected: list[tuple[Any, list]] = []  # (sort key, values)
        fast = self._fast_keys and self._fast_group
        if fast:
            heap = self._heap
            table = self._table
            while heap:
                key = heap[0]
                if key < rep_key or key > rep_key:
                    break
                heapq.heappop(heap)
                # Single-hash pop, mirroring ``add``'s raw-key probe.
                try:
                    entry = table.pop(key)
                except TypeError:
                    entry = table.pop(serde.encode(key))
                self._mem_bytes -= entry.nbytes
                collected.append((key, entry.values))
            for run in self._runs:
                for key, value in run.pop_group(
                    rep_key, self._grouping, natural=True
                ):
                    collected.append((key, [value]))
        else:
            while (
                self._heap
                and self._grouping.cmp(self._head_obj(), rep_key) == 0
            ):
                wrapper = heapq.heappop(self._heap)
                key = wrapper if self._fast_keys else wrapper.obj
                entry = self._table.pop(self._key_id(key))
                self._mem_bytes -= entry.nbytes
                collected.append((wrapper, entry.values))
            for run in self._runs:
                for key, value in run.pop_group(
                    rep_key, self._grouping, natural=self._fast_group
                ):
                    collected.append(
                        (
                            key if self._fast_keys else self._key_fn(key),
                            [value],
                        )
                    )
        if self._runs:
            self._runs = [run for run in self._runs if not run.exhausted]
        if len(collected) > 1:
            collected.sort(key=itemgetter(0))
        values = [value for _, group in collected for value in group]
        return rep_key, values

    def _head_obj(self) -> Any:
        """The raw key at the top of the heap."""
        top = self._heap[0]
        return top if self._fast_keys else top.obj

    def drain(self) -> Iterator[tuple[Any, list]]:
        """Pop every remaining group in ascending key order."""
        while not self.is_empty():
            yield self.pop_min_key_values()

    def is_empty(self) -> bool:
        return not self._heap and all(run.exhausted for run in self._runs)

    def __len__(self) -> int:
        """Number of distinct in-memory keys (spilled keys not counted)."""
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        return self._mem_bytes

    @property
    def spill_count(self) -> int:
        return self._spill_count

    @property
    def spilled_records(self) -> int:
        """Total records written to spill runs (merges not re-counted)."""
        return self._spilled_records

    # -- spilling --------------------------------------------------------
    def _spill(self) -> None:
        """Drain the in-memory table to a sorted run on local disk."""
        if not self._table:
            return
        name = f"{self._name_prefix}/run{self._spill_count}"
        self._spill_count += 1
        with self._tracer.span(
            "shared.spill", category="shared", run=name
        ) as span:
            writer = SpillWriter(self._store, name)
            records = 0
            if self._fast_keys:
                # Encode each entry's key once and reuse the bytes for
                # every value in the group (byte-identical output).
                encode = serde.encode
                append_parts = writer.append_parts
                table = self._table
                while self._heap:
                    key = heapq.heappop(self._heap)
                    try:  # single-hash pop, as in ``add``
                        entry = table.pop(key)
                    except TypeError:
                        entry = table.pop(serde.encode(key))
                    key_bytes = encode(entry.key)
                    for value in entry.values:
                        append_parts(key_bytes, value)
                        records += 1
            else:
                while self._heap:
                    wrapper = heapq.heappop(self._heap)
                    entry = self._table.pop(self._key_id(wrapper.obj))
                    for value in entry.values:
                        writer.append(entry.key, value)
                        records += 1
            spill_file = writer.close()
            span.set(records=records, bytes=spill_file.size_bytes)
        self._spilled_records += records
        self._counters.add(C.ANTI_SHARED_SPILLS)
        self._counters.add(C.ANTI_SHARED_SPILLED_BYTES, spill_file.size_bytes)
        self._counters.add(C.ANTI_SHARED_SPILLED_RECORDS, records)
        self._mem_bytes = 0
        self._runs.append(_Run(spill_file.scan(), name))
        if len(self._runs) > self._merge_threshold:
            self._merge_runs()

    def _merge_runs(self) -> None:
        """Merge all runs into one, mirroring map-side spill merging."""
        name = f"{self._name_prefix}/merge{self._spill_count}"
        with self._tracer.span(
            "shared.run-merge",
            category="shared",
            runs=len(self._runs),
        ):
            writer = SpillWriter(self._store, name)
            if fastpath.batch_enabled():
                # Batched tier: materialise the runs, merge them with
                # one stable sort of the concatenation (identical
                # record order to the heap merge — see
                # :func:`repro.mr.merge.merge_runs`, whose key adapter
                # for this comparator matches the heap's key exactly)
                # and bulk-append the result.  No counter is charged
                # inside this loop either way (the write is charged at
                # ``close``), so this is pure wall-time.
                runs = [list(run.drain()) for run in self._runs]
                writer.append_batch(merge_runs(runs, self._comparator))
            else:
                streams = [run.drain() for run in self._runs]
                if self._fast_keys:
                    merged = heapq.merge(*streams, key=itemgetter(0))
                else:
                    merged = heapq.merge(
                        *streams, key=lambda record: self._key_fn(record[0])
                    )
                for key, value in merged:
                    writer.append(key, value)
            for run in self._runs:
                self._store.delete_file(run.name)
            spill_file = writer.close()
            self._runs = [_Run(spill_file.scan(), name)]
