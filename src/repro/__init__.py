"""Reproduction of *Anti-Combining for MapReduce* (SIGMOD 2014).

Public API overview
-------------------

The MapReduce substrate lives in :mod:`repro.mr` (job API, simulator
engine, codecs, counters, runtime model).  The paper's contribution —
the Anti-Combining program transformation — lives in :mod:`repro.core`
and is enabled with one call::

    from repro import JobConf, LocalJobRunner, enable_anti_combining

    job = JobConf(mapper=MyMapper, reducer=MyReducer, num_reducers=8)
    anti_job = enable_anti_combining(job)          # AdaptiveSH, T=inf
    result = LocalJobRunner().run(anti_job, splits)

Workloads from the paper's evaluation are in :mod:`repro.workloads`,
synthetic stand-ins for its data sets in :mod:`repro.datagen`, and the
per-table/figure experiment drivers in :mod:`repro.experiments`.
"""

from repro.core import (
    AntiCombiningConfig,
    Strategy,
    enable_anti_combining,
)
from repro.mr import (
    ClusterModel,
    Combiner,
    Comparator,
    Context,
    Counters,
    HashPartitioner,
    JobConf,
    JobResult,
    LocalJobRunner,
    Mapper,
    Partitioner,
    Reducer,
    available_codecs,
    default_comparator,
    get_codec,
    split_records,
)

__version__ = "1.0.0"

__all__ = [
    "AntiCombiningConfig",
    "ClusterModel",
    "Combiner",
    "Comparator",
    "Context",
    "Counters",
    "HashPartitioner",
    "JobConf",
    "JobResult",
    "LocalJobRunner",
    "Mapper",
    "Partitioner",
    "Reducer",
    "Strategy",
    "available_codecs",
    "default_comparator",
    "enable_anti_combining",
    "get_codec",
    "split_records",
    "__version__",
]
