"""The paper's evaluation workloads (Section 7).

* :mod:`repro.workloads.query_suggestion` — the running example
  (Sections 2–4, 7.2–7.6): prefix top-k over a query log.
* :mod:`repro.workloads.wordcount` — Section 7.7.1, with a highly
  effective Combiner.
* :mod:`repro.workloads.pagerank` — Section 7.7.2, iterated.
* :mod:`repro.workloads.thetajoin` — Section 7.7.3, the 1-Bucket-Theta
  band self-join of Okcan & Riedewald (SIGMOD 2011).
* :mod:`repro.workloads.sort` — Section 7.1's overhead workload.
* :mod:`repro.workloads.busywork` — Section 7.6's CPU-intensive Map
  wrapper (Fibonacci busy work).

Beyond the evaluated four, the introduction's motivating application
classes are implemented too:

* :mod:`repro.workloads.similarityjoin` — set-similarity self-join
  with prefix filtering (Vernica et al., cited as [24]).
* :mod:`repro.workloads.multiquery` — scan-sharing / multi-query jobs
  ("a perfect target for Anti-Combining", Section 1).
* :mod:`repro.workloads.hits` — Kleinberg's HITS (cited as [14]).
"""

from repro.workloads.busywork import BusyWorkMapper, busywork_mapper_factory
from repro.workloads.hits import (
    HitsCombiner,
    HitsMapper,
    HitsReducer,
    hits_job,
    run_hits,
)
from repro.workloads.multiquery import (
    Query,
    SharedScanMapper,
    SharedScanReducer,
    shared_scan_job,
    split_results_by_query,
)
from repro.workloads.pagerank import (
    PageRankCombiner,
    PageRankMapper,
    PageRankReducer,
    pagerank_job,
    run_pagerank,
)
from repro.workloads.query_suggestion import (
    PrefixPartitioner,
    QuerySuggestionCombiner,
    QuerySuggestionMapper,
    QuerySuggestionReducer,
    query_suggestion_job,
)
from repro.workloads.similarityjoin import (
    SimilarityJoinMapper,
    SimilarityJoinReducer,
    similarity_join_job,
)
from repro.workloads.sort import SortMapper, SortReducer, sort_job
from repro.workloads.thetajoin import (
    BandJoinReducer,
    OneBucketThetaMapper,
    RegionPartitioner,
    band_join_job,
)
from repro.workloads.wordcount import (
    WordCountCombiner,
    WordCountMapper,
    WordCountReducer,
    wordcount_job,
)

__all__ = [
    "BandJoinReducer",
    "BusyWorkMapper",
    "HitsCombiner",
    "HitsMapper",
    "HitsReducer",
    "OneBucketThetaMapper",
    "PageRankCombiner",
    "PageRankMapper",
    "PageRankReducer",
    "PrefixPartitioner",
    "Query",
    "QuerySuggestionCombiner",
    "QuerySuggestionMapper",
    "QuerySuggestionReducer",
    "RegionPartitioner",
    "SharedScanMapper",
    "SharedScanReducer",
    "SimilarityJoinMapper",
    "SimilarityJoinReducer",
    "SortMapper",
    "SortReducer",
    "WordCountCombiner",
    "WordCountMapper",
    "WordCountReducer",
    "band_join_job",
    "busywork_mapper_factory",
    "hits_job",
    "pagerank_job",
    "query_suggestion_job",
    "run_hits",
    "run_pagerank",
    "shared_scan_job",
    "similarity_join_job",
    "sort_job",
    "split_results_by_query",
    "wordcount_job",
]
