"""Sort: the overhead workload of Section 7.1.

Hadoop's Sort program is an identity map followed by an identity
reduce; the framework's shuffle does the sorting.  Each Map call emits
exactly one record, so there is *nothing* for Anti-Combining to share —
running the transformed program measures its pure overhead (the
encoding tag on every record and the search for sharing opportunities).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mr.api import Context, Mapper, Reducer
from repro.mr.config import JobConf


class SortMapper(Mapper):
    """Identity: one output record per input record."""

    def map(self, key: Any, value: Any, context: Context) -> None:
        context.write(value, key)


class SortReducer(Reducer):
    """Identity: emit every value under its (now sorted) key."""

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        for value in values:
            context.write(key, value)


def sort_job(num_reducers: int = 8, **job_kwargs: Any) -> JobConf:
    """A ready-to-run Sort job configuration."""
    return JobConf(
        mapper=SortMapper,
        reducer=SortReducer,
        num_reducers=num_reducers,
        name="sort",
        **job_kwargs,
    )
