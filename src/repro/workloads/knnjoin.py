"""k-nearest-neighbour join (paper Section 1's join lineup).

The paper cites kNN joins [Lu et al., PVLDB 2012; Zhang et al., EDBT
2012] among the replication-heavy join algorithms Anti-Combining
targets.  This module implements the exact block-nested variant
(H-BNLJ from Zhang et al.): relations are split into ``n`` blocks and
every (data block, query block) pair meets in one reduce cell, so the
join is exact:

* a data point in block ``i`` is replicated to the ``n`` cells
  ``(i, *)``;
* a query point in block ``j`` is replicated to the ``n`` cells
  ``(*, j)``;
* the first job's Reduce computes, per cell, each query's ``k``
  nearest candidates among the cell's data points;
* a second job merges the per-cell candidate lists into each query's
  global top ``k``.

Each point is replicated ``n`` times with an identical value — the
Anti-Combining opportunity — and a pair ``(query, data)`` meets in
exactly one cell, so candidate lists never double-count.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Any, Iterator

from repro.mr.api import (
    Context,
    Mapper,
    Partitioner,
    Reducer,
    stable_hash,
)
from repro.mr.config import JobConf
from repro.mr.engine import JobResult, LocalJobRunner
from repro.mr.split import split_records

DATA_TAG = "D"
QUERY_TAG = "Q"


def euclidean(a: tuple, b: tuple) -> float:
    """Euclidean distance between two coordinate tuples."""
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class KnnBlockMapper(Mapper):
    """Replicate points over their row (data) / column (queries).

    Input records: ``(point_id, (tag, coordinates))`` with tag ``"D"``
    or ``"Q"``.
    """

    def __init__(self, num_blocks: int):
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        self.num_blocks = num_blocks

    def _cell(self, row: int, col: int) -> int:
        return row * self.num_blocks + col

    def map(self, point_id: Any, record: tuple, context: Context) -> None:
        tag, coords = record
        coords = tuple(coords)
        block = stable_hash(point_id) % self.num_blocks
        if tag == DATA_TAG:
            for col in range(self.num_blocks):
                context.write(
                    self._cell(block, col),
                    (DATA_TAG, point_id, coords),
                )
        elif tag == QUERY_TAG:
            for row in range(self.num_blocks):
                context.write(
                    self._cell(row, block),
                    (QUERY_TAG, point_id, coords),
                )
        else:
            raise ValueError(f"unknown point tag: {tag!r}")


class KnnCellReducer(Reducer):
    """Local kNN per cell: each query's k best candidates here."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def reduce(
        self, cell: int, values: Iterator[tuple], context: Context
    ) -> None:
        data: list[tuple[Any, tuple]] = []
        queries: list[tuple[Any, tuple]] = []
        for tag, point_id, coords in values:
            coords = tuple(coords)
            if tag == DATA_TAG:
                data.append((point_id, coords))
            else:
                queries.append((point_id, coords))
        for query_id, query_coords in queries:
            candidates = sorted(
                (round(euclidean(query_coords, coords), 9), data_id)
                for data_id, coords in data
            )[: self.k]
            if candidates:
                context.write(query_id, candidates)


class KnnMergeReducer(Reducer):
    """Second job: merge per-cell candidate lists into the global top-k."""

    def __init__(self, k: int):
        self.k = k

    def reduce(
        self, query_id: Any, values: Iterator[list], context: Context
    ) -> None:
        merged = sorted(
            (tuple(candidate) for batch in values for candidate in batch)
        )
        context.write(query_id, merged[: self.k])


class _CellPartitioner(Partitioner):
    def get_partition(self, key: int, num_partitions: int) -> int:
        return key % num_partitions


def knn_join_job(
    k: int = 3,
    num_blocks: int = 4,
    num_reducers: int = 8,
    **job_kwargs: Any,
) -> JobConf:
    """The first (replicated block) job of the kNN join."""
    return JobConf(
        mapper=partial(KnnBlockMapper, num_blocks),
        reducer=partial(KnnCellReducer, k),
        partitioner=_CellPartitioner(),
        num_reducers=num_reducers,
        name="knn-join",
        **job_kwargs,
    )


def run_knn_join(
    job: JobConf,
    records: list[tuple[Any, tuple]],
    k: int,
    num_splits: int = 8,
    runner: LocalJobRunner | None = None,
) -> tuple[dict[Any, list], JobResult, JobResult]:
    """Run both kNN-join jobs; return ``{query_id: [(dist, id), ...]}``.

    The merge job inherits the candidate job's reducer count and cost
    meter so accounting stays comparable.
    """
    from repro.mr.api import HashPartitioner

    runner = runner if runner is not None else LocalJobRunner()
    first = runner.run(job, split_records(records, num_splits=num_splits))
    merge_job = job.clone(
        mapper=Mapper,
        reducer=partial(KnnMergeReducer, k),
        combiner=None,
        partitioner=HashPartitioner(),
        name="knn-merge",
        anti=None,
    )
    second = runner.run(
        merge_job, split_records(first.output, num_splits=num_splits)
    )
    return dict(second.output), first, second


def brute_force_knn(
    records: list[tuple[Any, tuple]], k: int
) -> dict[Any, list]:
    """Reference implementation: all-pairs distances."""
    data = [
        (pid, tuple(coords))
        for pid, (tag, coords) in records
        if tag == DATA_TAG
    ]
    queries = [
        (pid, tuple(coords))
        for pid, (tag, coords) in records
        if tag == QUERY_TAG
    ]
    result: dict[Any, list] = {}
    for query_id, query_coords in queries:
        candidates = sorted(
            (round(euclidean(query_coords, coords), 9), data_id)
            for data_id, coords in data
        )
        if candidates:
            result[query_id] = candidates[:k]
    return result
