"""WordCount (paper Section 7.7.1).

Map emits ``(word, 1)`` for every word in a line of text — every output
record of one Map call shares the value ``1``, so EagerSH collapses a
line's words into one record per partition, and LazySH can send the
whole line once per partition.  The Combiner (a partial sum) is *highly
effective* here; the paper's point is that Anti-Combining still reduces
the map-side disk I/O and sorting work that happens before the Combiner
gets to shrink the data.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mr.api import Combiner, Context, Mapper, Reducer
from repro.mr.config import JobConf


class WordCountMapper(Mapper):
    """Emit ``(word, 1)`` for every whitespace-separated word."""

    def map(self, key: Any, line: str, context: Context) -> None:
        for word in line.split():
            context.write(word, 1)


class WordCountCombiner(Combiner):
    """Partial sum per word within one map task."""

    def reduce(self, key: Any, values: Iterator[int], context: Context) -> None:
        context.write(key, sum(values))


class WordCountReducer(Reducer):
    """Total count per word."""

    def reduce(self, key: Any, values: Iterator[int], context: Context) -> None:
        context.write(key, sum(values))


def wordcount_job(
    num_reducers: int = 8,
    with_combiner: bool = True,
    **job_kwargs: Any,
) -> JobConf:
    """A ready-to-run WordCount job configuration."""
    return JobConf(
        mapper=WordCountMapper,
        reducer=WordCountReducer,
        combiner=WordCountCombiner if with_combiner else None,
        num_reducers=num_reducers,
        name="wordcount",
        **job_kwargs,
    )
