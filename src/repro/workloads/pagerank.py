"""PageRank (paper Section 7.7.2).

One iteration is one MapReduce job over records
``(node, (rank, [out_neighbors...]))``:

* **Map** divides the node's rank evenly over its out-edges and emits
  ``(neighbor, ('R', rank/out_degree))`` for every neighbor — the same
  contribution value for every out-edge, the sharing opportunity the
  paper exploits — plus ``(node, ('S', neighbors))`` to carry the graph
  structure to the next iteration.
* **Reduce** sums the incoming contributions and applies the damping
  formula ``(1 - d)/N + d * sum``, emitting the node in input format so
  iterations chain.
* The **Combiner** pre-sums contributions per target node within a map
  task (and inside ``Shared`` in the reduce phase).

Dangling nodes (no out-edges) keep their structure record and simply
contribute nothing, the standard simplification.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Any, Iterator, Sequence

from repro.mr.api import Combiner, Context, Mapper, Reducer
from repro.mr.config import JobConf
from repro.mr.engine import JobResult, LocalJobRunner
from repro.mr.split import split_records
from repro.pipeline import Pipeline, PipelineResult

STRUCTURE = "S"
RANK = "R"


class PageRankMapper(Mapper):
    """Distribute rank over out-edges; forward the adjacency list."""

    def map(self, node: Any, state: tuple, context: Context) -> None:
        rank, neighbors = state
        context.write(node, (STRUCTURE, list(neighbors)))
        if neighbors:
            contribution = rank / len(neighbors)
            for neighbor in neighbors:
                context.write(neighbor, (RANK, contribution))


class PageRankCombiner(Combiner):
    """Pre-sum rank contributions per node; pass structure through."""

    def reduce(self, key: Any, values: Iterator[tuple], context: Context) -> None:
        contributions: list[float] = []
        structure: list | None = None
        for tag, payload in values:
            if tag == STRUCTURE:
                structure = payload
            else:
                contributions.append(payload)
        # fsum is exactly rounded, so the partial sum is independent of
        # the order contributions arrive in (see PageRankReducer).
        total = math.fsum(contributions)
        if structure is not None:
            context.write(key, (STRUCTURE, structure))
        if total or structure is None:
            context.write(key, (RANK, total))


class PageRankReducer(Reducer):
    """Apply the damping formula; emit the node in input format."""

    def __init__(self, num_nodes: int, damping: float = 0.85):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not 0 <= damping <= 1:
            raise ValueError("damping must be in [0, 1]")
        self.num_nodes = num_nodes
        self.damping = damping

    def reduce(self, node: Any, values: Iterator[tuple], context: Context) -> None:
        contributions: list[float] = []
        structure: list = []
        for tag, payload in values:
            if tag == STRUCTURE:
                structure = payload
            else:
                contributions.append(payload)
        # A left-to-right ``+=`` makes the rank depend on the order the
        # grouped values arrive in, which varies with combiner grouping
        # and sharing strategy.  math.fsum computes the exactly rounded
        # sum of the multiset, so any arrival order (and any partial
        # pre-aggregation that preserves the multiset's exact sum)
        # yields the same float.
        total = math.fsum(contributions)
        rank = (1 - self.damping) / self.num_nodes + self.damping * total
        context.write(node, (rank, structure))


def pagerank_job(
    num_nodes: int,
    damping: float = 0.85,
    num_reducers: int = 8,
    with_combiner: bool = True,
    **job_kwargs: Any,
) -> JobConf:
    """One PageRank iteration as a job configuration."""
    return JobConf(
        mapper=PageRankMapper,
        reducer=partial(PageRankReducer, num_nodes, damping),
        combiner=PageRankCombiner if with_combiner else None,
        num_reducers=num_reducers,
        name="pagerank",
        **job_kwargs,
    )


def run_pagerank(
    job: JobConf,
    graph: Sequence[tuple[Any, tuple]],
    iterations: int = 5,
    num_splits: int = 8,
    runner: LocalJobRunner | None = None,
) -> tuple[list[tuple[Any, tuple]], list[JobResult]]:
    """Run ``iterations`` chained PageRank jobs.

    Returns the final ``(node, (rank, neighbors))`` records and the
    per-iteration :class:`~repro.mr.engine.JobResult` list (whose
    counters the experiments aggregate).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    runner = runner if runner is not None else LocalJobRunner()
    records = list(graph)
    results: list[JobResult] = []
    for _ in range(iterations):
        splits = split_records(records, num_splits=num_splits)
        result = runner.run(job, splits)
        results.append(result)
        records = result.output
    return records, results


# -- pipeline port -------------------------------------------------------
def split_graph(
    graph: Sequence[tuple[Any, tuple]]
) -> tuple[list[tuple[Any, list]], list[tuple[Any, float]]]:
    """Split ``(node, (rank, neighbors))`` records into the
    loop-invariant structure dataset and the rank vector."""
    structure = [(node, list(neighbors)) for node, (_, neighbors) in graph]
    ranks = [(node, rank) for node, (rank, _) in graph]
    return structure, ranks


def assemble_records(
    ranks: Sequence[tuple[Any, float]],
    structure: Sequence[tuple[Any, list]],
) -> list[tuple[Any, tuple]]:
    """Join a rank vector with the structure dataset back into the
    job's ``(node, (rank, neighbors))`` input format, in rank order.

    Nodes absent from the structure dataset get an empty adjacency
    list — exactly what the reducer carries for them.
    """
    adjacency = dict(structure)
    return [
        (node, (rank, adjacency.get(node, []))) for node, rank in ranks
    ]


def extract_ranks(
    records: Sequence[tuple[Any, tuple]]
) -> list[tuple[Any, float]]:
    """Project ``(node, (rank, neighbors))`` records to the rank vector."""
    return [(node, rank) for node, (rank, _) in records]


def run_pagerank_pipeline(
    job: JobConf,
    graph: Sequence[tuple[Any, tuple]],
    iterations: int = 5,
    num_splits: int = 8,
    runner: LocalJobRunner | None = None,
    until: Any = None,
    max_concurrent_stages: int = 1,
) -> tuple[list[tuple[Any, tuple]], PipelineResult]:
    """:func:`run_pagerank` on the pipeline layer.

    The graph is split into the loop-invariant ``structure`` dataset
    (serde-encoded once; every iteration's read is a cache hit) and the
    per-iteration ``ranks`` vector.  Each iteration assembles the job
    input from the two, runs one PageRank job, and extracts the next
    rank vector.  Returns the final ``(node, (rank, neighbors))``
    records — bit-identical to :func:`run_pagerank` — and the
    :class:`~repro.pipeline.result.PipelineResult` whose
    ``job_results()`` mirror the manual loop's per-iteration results.

    ``until`` overrides the fixed iteration count with any policy from
    :mod:`repro.pipeline.convergence` (e.g. a rank-residual threshold).
    """
    if until is None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        until = iterations
    pipeline = Pipeline(
        "pagerank",
        runner=runner,
        max_concurrent_stages=max_concurrent_stages,
    )
    structure_records, rank_records = split_graph(graph)
    structure = pipeline.source("structure", structure_records)
    ranks0 = pipeline.source("ranks", rank_records)

    def body(sub: Pipeline, loop_vars: dict, iteration: int) -> dict:
        assembled = sub.transform(
            "assemble", assemble_records, [loop_vars["ranks"], structure]
        )
        output = sub.mapreduce(
            "pagerank", job, assembled, num_splits=num_splits
        )
        next_ranks = sub.transform("ranks", extract_ranks, output)
        return {"ranks": next_ranks}

    final = pipeline.iterate(
        "iterate", body, {"ranks": ranks0}, until=until
    )
    pipeline.transform(
        "result", assemble_records, [final["ranks"], structure]
    )
    result = pipeline.run()
    return result.dataset("result"), result
