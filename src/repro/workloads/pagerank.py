"""PageRank (paper Section 7.7.2).

One iteration is one MapReduce job over records
``(node, (rank, [out_neighbors...]))``:

* **Map** divides the node's rank evenly over its out-edges and emits
  ``(neighbor, ('R', rank/out_degree))`` for every neighbor — the same
  contribution value for every out-edge, the sharing opportunity the
  paper exploits — plus ``(node, ('S', neighbors))`` to carry the graph
  structure to the next iteration.
* **Reduce** sums the incoming contributions and applies the damping
  formula ``(1 - d)/N + d * sum``, emitting the node in input format so
  iterations chain.
* The **Combiner** pre-sums contributions per target node within a map
  task (and inside ``Shared`` in the reduce phase).

Dangling nodes (no out-edges) keep their structure record and simply
contribute nothing, the standard simplification.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Iterator, Sequence

from repro.mr.api import Combiner, Context, Mapper, Reducer
from repro.mr.config import JobConf
from repro.mr.engine import JobResult, LocalJobRunner
from repro.mr.split import split_records

STRUCTURE = "S"
RANK = "R"


class PageRankMapper(Mapper):
    """Distribute rank over out-edges; forward the adjacency list."""

    def map(self, node: Any, state: tuple, context: Context) -> None:
        rank, neighbors = state
        context.write(node, (STRUCTURE, list(neighbors)))
        if neighbors:
            contribution = rank / len(neighbors)
            for neighbor in neighbors:
                context.write(neighbor, (RANK, contribution))


class PageRankCombiner(Combiner):
    """Pre-sum rank contributions per node; pass structure through."""

    def reduce(self, key: Any, values: Iterator[tuple], context: Context) -> None:
        total = 0.0
        structure: list | None = None
        for tag, payload in values:
            if tag == STRUCTURE:
                structure = payload
            else:
                total += payload
        if structure is not None:
            context.write(key, (STRUCTURE, structure))
        if total or structure is None:
            context.write(key, (RANK, total))


class PageRankReducer(Reducer):
    """Apply the damping formula; emit the node in input format."""

    def __init__(self, num_nodes: int, damping: float = 0.85):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not 0 <= damping <= 1:
            raise ValueError("damping must be in [0, 1]")
        self.num_nodes = num_nodes
        self.damping = damping

    def reduce(self, node: Any, values: Iterator[tuple], context: Context) -> None:
        total = 0.0
        structure: list = []
        for tag, payload in values:
            if tag == STRUCTURE:
                structure = payload
            else:
                total += payload
        rank = (1 - self.damping) / self.num_nodes + self.damping * total
        context.write(node, (rank, structure))


def pagerank_job(
    num_nodes: int,
    damping: float = 0.85,
    num_reducers: int = 8,
    with_combiner: bool = True,
    **job_kwargs: Any,
) -> JobConf:
    """One PageRank iteration as a job configuration."""
    return JobConf(
        mapper=PageRankMapper,
        reducer=partial(PageRankReducer, num_nodes, damping),
        combiner=PageRankCombiner if with_combiner else None,
        num_reducers=num_reducers,
        name="pagerank",
        **job_kwargs,
    )


def run_pagerank(
    job: JobConf,
    graph: Sequence[tuple[Any, tuple]],
    iterations: int = 5,
    num_splits: int = 8,
    runner: LocalJobRunner | None = None,
) -> tuple[list[tuple[Any, tuple]], list[JobResult]]:
    """Run ``iterations`` chained PageRank jobs.

    Returns the final ``(node, (rank, neighbors))`` records and the
    per-iteration :class:`~repro.mr.engine.JobResult` list (whose
    counters the experiments aggregate).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    runner = runner if runner is not None else LocalJobRunner()
    records = list(graph)
    results: list[JobResult] = []
    for _ in range(iterations):
        splits = split_records(records, num_splits=num_splits)
        result = runner.run(job, splits)
        results.append(result)
        records = result.output
    return records, results
