"""CPU-intensive Map wrapper: the Fibonacci busy work of Section 7.6.

The paper studies how the threshold ``T`` trades network savings
against duplicated Map CPU by adding "extra CPU intensive work" to the
Map function: "when ``x_i`` extra work is added, each map call computes
the first ``25000 * x_i`` Fibonacci numbers".  :class:`BusyWorkMapper`
wraps any mapper the same way.  Because the busy work runs *inside* the
original Map, the AntiMapper's cost measurement sees it, and LazySH
decoding re-executes it — exactly the effect Figure 11 plots.

The per-unit iteration count is scaled down from the paper's 25000
(Python integers grow without bound, so a faithful count would swamp
the simulation); the *shape* of Figure 11 only needs the per-call cost
to grow linearly in ``x``.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable

from repro.mr.api import Context, Mapper

#: Fibonacci iterations per unit of "extra work".
DEFAULT_ITERATIONS_PER_UNIT = 1000

#: Keep the numbers bounded so each iteration costs the same.
_FIB_MODULUS = 1 << 32


def fibonacci_busy_work(iterations: int) -> int:
    """Compute ``iterations`` Fibonacci steps (mod 2**32); return the last."""
    a, b = 0, 1
    for _ in range(iterations):
        a, b = b, (a + b) % _FIB_MODULUS
    return a


class BusyWorkMapper(Mapper):
    """Wrap a mapper, burning ``units`` of CPU before every map call."""

    def __init__(
        self,
        mapper_factory: Callable[[], Mapper],
        units: float,
        iterations_per_unit: int = DEFAULT_ITERATIONS_PER_UNIT,
    ):
        if units < 0:
            raise ValueError("units must be >= 0")
        self._inner = mapper_factory()
        self._iterations = int(units * iterations_per_unit)

    def setup(self, context: Context) -> None:
        self._inner.setup(context)

    def map(self, key: Any, value: Any, context: Context) -> None:
        fibonacci_busy_work(self._iterations)
        self._inner.map(key, value, context)

    def cleanup(self, context: Context) -> None:
        self._inner.cleanup(context)


def busywork_mapper_factory(
    mapper_factory: Callable[[], Mapper],
    units: float,
    iterations_per_unit: int = DEFAULT_ITERATIONS_PER_UNIT,
) -> Callable[[], Mapper]:
    """A factory producing busy-work-wrapped mappers (for ``JobConf``).

    A ``functools.partial`` (not a closure) so the resulting job
    pickles and can run on the process executor.
    """
    return partial(
        BusyWorkMapper, mapper_factory, units, iterations_per_unit
    )
