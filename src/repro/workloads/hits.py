"""HITS (Hyperlink-Induced Topic Search) — paper Section 1's graph list.

The paper names HITS [Kleinberg 1999] alongside PageRank among the
graph algorithms whose Map fan-out benefits from Anti-Combining.  One
iteration is one MapReduce job over records

    (node, (hub, authority, [out_neighbors...]))

* **Map** forwards the structure and emits an authority contribution
  ``(m, ('A', hub))`` for every out-edge ``node -> m`` — the same value
  for every target, the EagerSH opportunity.
* **Reduce** sums the authority contributions per node and carries the
  adjacency list through.
* The **driver** recomputes hub scores from the fresh authorities
  (``hub(n) = sum of authority(m) over out-edges``) and L2-normalises
  both vectors each iteration, matching Kleinberg's formulation and
  :func:`networkx.hits`.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Sequence

from repro.mr.api import Combiner, Context, Mapper, Reducer
from repro.mr.config import JobConf
from repro.mr.engine import JobResult, LocalJobRunner
from repro.mr.split import split_records
from repro.pipeline import Pipeline, PipelineResult

STRUCTURE = "S"
AUTH = "A"


class HitsMapper(Mapper):
    """Spread each node's hub score to its out-neighbours."""

    def map(self, node: Any, state: tuple, context: Context) -> None:
        hub, authority, neighbors = state
        context.write(node, (STRUCTURE, (authority, list(neighbors))))
        for neighbor in neighbors:
            context.write(neighbor, (AUTH, hub))


class HitsCombiner(Combiner):
    """Pre-sum authority contributions within a map task."""

    def reduce(self, key: Any, values: Iterator[tuple], context: Context) -> None:
        total = 0.0
        for tag, payload in values:
            if tag == STRUCTURE:
                context.write(key, (tag, payload))
            else:
                total += payload
        if total:
            context.write(key, (AUTH, total))


class HitsReducer(Reducer):
    """New authority = sum of in-neighbour hubs; keep structure."""

    def reduce(self, node: Any, values: Iterator[tuple], context: Context) -> None:
        new_authority = 0.0
        neighbors: list = []
        for tag, payload in values:
            if tag == STRUCTURE:
                _, neighbors = payload
            else:
                new_authority += payload
        # hub is recomputed by the driver from the new authorities
        context.write(node, (new_authority, neighbors))


def hits_job(num_reducers: int = 8, with_combiner: bool = False,
             **job_kwargs: Any) -> JobConf:
    """One HITS half-iteration (authority update) as a job."""
    return JobConf(
        mapper=HitsMapper,
        reducer=HitsReducer,
        combiner=HitsCombiner if with_combiner else None,
        num_reducers=num_reducers,
        name="hits",
        **job_kwargs,
    )


def _normalise(scores: dict[Any, float]) -> dict[Any, float]:
    norm = math.sqrt(sum(score * score for score in scores.values()))
    if norm == 0:
        return scores
    return {node: score / norm for node, score in scores.items()}


def initial_state(
    graph: Sequence[tuple[Any, tuple[float, float, list]]]
) -> dict[Any, tuple[float, float, list]]:
    """The driver's iteration state from input records (graph order)."""
    return {
        node: (float(hub), float(authority), list(neighbors))
        for node, (hub, authority, neighbors) in graph
    }


def advance_state(
    state: dict[Any, tuple[float, float, list]],
    output: Sequence[tuple[Any, tuple[float, list]]],
) -> dict[Any, tuple[float, float, list]]:
    """One driver-side HITS update from a job's authority output.

    Collects the fresh authorities (and carried structure), recomputes
    hubs from them, L2-normalises both vectors, and returns the next
    iteration's state — in ``state``'s (graph) order.  Both the manual
    loop and the pipeline port call exactly this function, so their
    float arithmetic is identical by construction.
    """
    adjacency: dict[Any, list] = {}
    authorities: dict[Any, float] = {}
    for node, (new_authority, neighbors) in output:
        adjacency[node] = neighbors
        authorities[node] = new_authority
    # nodes with no in-edges may be missing — keep them at zero
    for node in state:
        authorities.setdefault(node, 0.0)
        adjacency.setdefault(node, state[node][2])
    authorities = _normalise(authorities)
    hubs = {
        node: sum(
            authorities.get(neighbor, 0.0)
            for neighbor in adjacency[node]
        )
        for node in state
    }
    hubs = _normalise(hubs)
    return {
        node: (hubs[node], authorities[node], adjacency[node])
        for node in state
    }


def scores_from_state(
    state: dict[Any, tuple[float, float, list]]
) -> dict[Any, tuple[float, float]]:
    """Project iteration state to ``{node: (hub, authority)}``."""
    return {
        node: (hub, authority)
        for node, (hub, authority, _) in state.items()
    }


def run_hits(
    job: JobConf,
    graph: Sequence[tuple[Any, tuple[float, float, list]]],
    iterations: int = 5,
    num_splits: int = 8,
    runner: LocalJobRunner | None = None,
) -> tuple[dict[Any, tuple[float, float]], list[JobResult]]:
    """Run ``iterations`` of HITS; return ``{node: (hub, authority)}``.

    Each iteration: one MapReduce job computes the authority update
    (authority(m) = sum of hubs over in-edges); the driver then
    recomputes hubs (hub(n) = sum of new authorities over out-edges)
    and L2-normalises both vectors, matching Kleinberg's algorithm and
    :func:`networkx.hits`.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    runner = runner if runner is not None else LocalJobRunner()
    state = initial_state(graph)
    results: list[JobResult] = []
    for _ in range(iterations):
        records = [(node, value) for node, value in sorted(state.items())]
        splits = split_records(records, num_splits=num_splits)
        result = runner.run(job, splits)
        results.append(result)
        state = advance_state(state, result.output)
    return scores_from_state(state), results


# -- pipeline port -------------------------------------------------------
def _sorted_state(records: list) -> list:
    return sorted(records)


def _advance_records(output: list, state_records: list) -> list:
    state = dict(state_records)
    return list(advance_state(state, output).items())


def run_hits_pipeline(
    job: JobConf,
    graph: Sequence[tuple[Any, tuple[float, float, list]]],
    iterations: int = 5,
    num_splits: int = 8,
    runner: LocalJobRunner | None = None,
    until: Any = None,
) -> tuple[dict[Any, tuple[float, float]], PipelineResult]:
    """:func:`run_hits` on the pipeline layer.

    The loop variable is the driver state as ``(node, (hub, authority,
    neighbors))`` records in graph order; each iteration sorts it into
    the job input, runs one authority-update job, and advances the
    state with :func:`advance_state` — the same function the manual
    loop uses, so scores are bit-identical.  Returns the scores and the
    :class:`~repro.pipeline.result.PipelineResult`.
    """
    if until is None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        until = iterations
    pipeline = Pipeline("hits", runner=runner)
    state0 = pipeline.source("state", list(initial_state(graph).items()))

    def body(sub: Pipeline, loop_vars: dict, iteration: int) -> dict:
        job_input = sub.transform(
            "input", _sorted_state, loop_vars["state"]
        )
        output = sub.mapreduce(
            "hits", job, job_input, num_splits=num_splits
        )
        next_state = sub.transform(
            "state", _advance_records, [output, loop_vars["state"]]
        )
        return {"state": next_state}

    final = pipeline.iterate(
        "iterate", body, {"state": state0}, until=until
    )
    result = pipeline.run()
    scores = scores_from_state(dict(result.dataset(final["state"].name)))
    return scores, result
