"""Multi-way (chain) join with the Afrati–Ullman "Shares" hash cube.

The paper's Section 1 cites multi-way join processing [Afrati & Ullman,
EDBT 2010] as an application that "relies on input replication in the
map phase".  This module implements their one-job 3-way chain join

    R(a, b) JOIN S(b, c) JOIN T(c, d)

over a grid of reducers: each reduce task owns one cell ``(i, j)`` of
an ``m x n`` cube, where ``i`` hashes the shared attribute ``b`` and
``j`` hashes ``c``:

* an S-tuple goes to exactly one cell ``(h(b), h(c))``;
* an R-tuple, which knows ``b`` but not ``c``, is replicated across the
  whole row ``(h(b), *)`` — ``n`` copies of the same value;
* a T-tuple is replicated down the column ``(*, h(c))`` — ``m`` copies.

Every joined triple is produced in exactly one cell, so no
deduplication is needed.  The row/column replication of identical
values is precisely the EagerSH/LazySH opportunity.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Iterator

from repro.mr.api import (
    Context,
    Mapper,
    Partitioner,
    Reducer,
    stable_hash,
)
from repro.mr.config import JobConf

R_TAG = "R"
S_TAG = "S"
T_TAG = "T"


class StarJoinMapper(Mapper):
    """Route each tagged tuple to its cube cell(s).

    Input records are ``(record_id, (relation_tag, tuple))`` where the
    relation tag is one of ``"R"``, ``"S"``, ``"T"`` and tuples are
    ``(a, b)``, ``(b, c)``, ``(c, d)`` respectively.
    """

    def __init__(self, b_shares: int, c_shares: int):
        if b_shares < 1 or c_shares < 1:
            raise ValueError("shares must be >= 1")
        self.b_shares = b_shares
        self.c_shares = c_shares

    def _cell(self, row: int, col: int) -> int:
        return row * self.c_shares + col

    def map(self, key: Any, record: tuple, context: Context) -> None:
        tag, payload = record
        payload = tuple(payload)
        if tag == R_TAG:
            row = stable_hash(payload[1]) % self.b_shares
            for col in range(self.c_shares):
                context.write(self._cell(row, col), (R_TAG, payload))
        elif tag == S_TAG:
            row = stable_hash(payload[0]) % self.b_shares
            col = stable_hash(payload[1]) % self.c_shares
            context.write(self._cell(row, col), (S_TAG, payload))
        elif tag == T_TAG:
            col = stable_hash(payload[0]) % self.c_shares
            for row in range(self.b_shares):
                context.write(self._cell(row, col), (T_TAG, payload))
        else:
            raise ValueError(f"unknown relation tag: {tag!r}")


class CellPartitioner(Partitioner):
    """Cube cells round-robin over reduce tasks."""

    def get_partition(self, cell: int, num_partitions: int) -> int:
        return cell % num_partitions


class StarJoinReducer(Reducer):
    """Join one cell's R, S and T fragments on b and c."""

    def reduce(
        self, cell: int, values: Iterator[tuple], context: Context
    ) -> None:
        r_by_b: dict[Any, list] = {}
        s_tuples: list[tuple] = []
        t_by_c: dict[Any, list] = {}
        for tag, payload in values:
            payload = tuple(payload)
            if tag == R_TAG:
                r_by_b.setdefault(payload[1], []).append(payload)
            elif tag == S_TAG:
                s_tuples.append(payload)
            else:
                t_by_c.setdefault(payload[0], []).append(payload)
        for b, c in s_tuples:
            for a, _ in r_by_b.get(b, ()):
                for _, d in t_by_c.get(c, ()):
                    context.write((a, b, c, d), None)


def star_join_job(
    b_shares: int = 4,
    c_shares: int = 4,
    num_reducers: int = 8,
    **job_kwargs: Any,
) -> JobConf:
    """A ready-to-run 3-way chain-join job configuration."""
    return JobConf(
        mapper=partial(StarJoinMapper, b_shares, c_shares),
        reducer=StarJoinReducer,
        partitioner=CellPartitioner(),
        num_reducers=num_reducers,
        name="star-join",
        **job_kwargs,
    )


def brute_force_star_join(
    records: list[tuple[Any, tuple]]
) -> list[tuple]:
    """Reference implementation: nested loops over R, S, T."""
    r = [tuple(p) for _, (tag, p) in records if tag == R_TAG]
    s = [tuple(p) for _, (tag, p) in records if tag == S_TAG]
    t = [tuple(p) for _, (tag, p) in records if tag == T_TAG]
    return sorted(
        (a, b, c, d)
        for (b2, c2) in s
        for (a, b) in r
        if b == b2
        for (c, d) in t
        if c == c2
    )
