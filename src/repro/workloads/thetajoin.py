"""1-Bucket-Theta join (paper Section 7.7.3; algorithm from [19]).

The paper evaluates Anti-Combining on the band self-join

    SELECT S.date, S.longitude, S.latitude, T.latitude
    FROM   Cloud AS S, Cloud AS T
    WHERE  S.date = T.date AND S.longitude = T.longitude
      AND  ABS(S.latitude - T.latitude) <= 10

executed with the memory-aware 1-Bucket-Theta algorithm (Okcan &
Riedewald, SIGMOD 2011), which we implement here:

* The (conceptual) |S| x |T| join matrix is tiled by a
  ``grid_rows x grid_cols`` grid of regions; finer grids model the
  memory-aware chunking (smaller chunks, more replication — the paper
  observes an average replication factor of 67 on its cluster).
* Each input record is assigned one matrix row and one matrix column.
  The original algorithm draws them uniformly at random; we derive them
  from a stable hash of the record so the assignment is uniform *and*
  deterministic, which keeps LazySH applicable (Section 6.2's
  non-determinism caveat is about re-execution disagreeing with the
  first execution — a hash-random assignment sidesteps it).
* **Map** sends the record as an S-tuple to every region in its row and
  as a T-tuple to every region in its column.  All S-copies share one
  value and all T-copies share another, and every copy of a record
  stems from one Map call — the replication that makes joins "a perfect
  target for Anti-Combining".
* **Reduce** (one call per region) splits its input into S- and
  T-tuples and evaluates the theta predicate over their cross product.
  A pair (s, t) meets in exactly one region (s.row, t.col), so no
  deduplication is needed.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterator

from repro.mr.api import (
    Context,
    Mapper,
    Partitioner,
    Reducer,
    stable_hash,
)
from repro.mr.config import JobConf

S_TAG = "S"
T_TAG = "T"

#: A predicate deciding whether records s and t join.
Predicate = Callable[[tuple, tuple], bool]


def band_join_predicate(s: tuple, t: tuple) -> bool:
    """The paper's Cloud query: equal date & longitude, latitude band.

    Record layout (from :mod:`repro.datagen.cloud`):
    ``(date, longitude, latitude, *extra_attributes)``.
    """
    return s[0] == t[0] and s[1] == t[1] and abs(s[2] - t[2]) <= 10


class OneBucketThetaMapper(Mapper):
    """Replicate each record over its matrix row (as S) and column (as T)."""

    def __init__(self, grid_rows: int, grid_cols: int):
        if grid_rows < 1 or grid_cols < 1:
            raise ValueError("grid dimensions must be >= 1")
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols

    def _cell(self, row: int, col: int) -> int:
        return row * self.grid_cols + col

    def map(self, key: Any, record: tuple, context: Context) -> None:
        row = stable_hash(("row", key)) % self.grid_rows
        col = stable_hash(("col", key)) % self.grid_cols
        for c in range(self.grid_cols):
            context.write(self._cell(row, c), (S_TAG, record))
        for r in range(self.grid_rows):
            context.write(self._cell(r, col), (T_TAG, record))


class RegionPartitioner(Partitioner):
    """Regions round-robin over reduce tasks.

    With more regions than reducers (the memory-aware setting) several
    region keys share a partition, which is where EagerSH/LazySH find
    cross-key sharing.
    """

    def get_partition(self, key: int, num_partitions: int) -> int:
        return key % num_partitions


class BandJoinReducer(Reducer):
    """Evaluate the theta predicate over one region's S x T tuples."""

    def __init__(self, predicate: Predicate = band_join_predicate):
        self.predicate = predicate

    def reduce(
        self, region: int, values: Iterator[tuple], context: Context
    ) -> None:
        s_tuples: list[tuple] = []
        t_tuples: list[tuple] = []
        for tag, record in values:
            record = tuple(record)
            if tag == S_TAG:
                s_tuples.append(record)
            else:
                t_tuples.append(record)
        for s in s_tuples:
            for t in t_tuples:
                if self.predicate(s, t):
                    # The paper's projection: S.date, S.longitude,
                    # S.latitude, T.latitude.
                    context.write(region, (s[0], s[1], s[2], t[2]))


def band_join_job(
    grid_rows: int = 8,
    grid_cols: int = 8,
    num_reducers: int = 8,
    predicate: Predicate = band_join_predicate,
    **job_kwargs: Any,
) -> JobConf:
    """A ready-to-run 1-Bucket-Theta band-join job configuration."""
    return JobConf(
        mapper=partial(OneBucketThetaMapper, grid_rows, grid_cols),
        reducer=partial(BandJoinReducer, predicate),
        partitioner=RegionPartitioner(),
        num_reducers=num_reducers,
        name="theta-join",
        **job_kwargs,
    )
