"""Query-Suggestion: the paper's running example (Section 2).

For every string ``P`` that occurs as a prefix of some logged query,
compute the ``k`` most frequent queries starting with ``P``:

* **Map** emits ``(P, Q)`` for every prefix ``P`` of query ``Q`` — so a
  query of length ``n`` produces ``n`` output records all sharing the
  same value, the classic Anti-Combining opportunity (quadratic Map
  output in the input size).
* **Reduce** counts the queries arriving for one prefix and emits the
  top ``k``.
* The optional **Combiner** (Section 7.3) replaces the ``m``
  occurrences of each distinct query in a prefix group with a frequency
  map ``{query: m}`` — a single output record per group, which is what
  lets ``Shared`` combine values in the reduce phase (Table 2's
  ``-CB`` rows).

Three partitioners from Section 7.2 are provided: the standard hash
partitioner (use :class:`repro.mr.api.HashPartitioner`), and
:class:`PrefixPartitioner` with prefix length 1 ("Prefix-1", maximal
sharing) or 5 ("Prefix-5", sharing with more parallelism).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Iterator

from repro.mr.api import (
    Combiner,
    Context,
    Mapper,
    Partitioner,
    Reducer,
    stable_hash,
)
from repro.mr.config import JobConf


#: Per-process memo of a query's prefix expansion.  Query logs repeat
#: queries heavily (the Zipf head, and every job of a multi-job
#: experiment replays the same log), so the ``(prefix, query)`` runs —
#: and, importantly, the *same prefix string objects* with their cached
#: hashes — are built once per distinct query.
_PREFIX_PAIRS: dict[str, tuple] = {}
_PREFIX_PAIRS_LIMIT = 1 << 15


class QuerySuggestionMapper(Mapper):
    """Emit ``(prefix, query)`` for every prefix of the query."""

    def map(self, key: Any, query: str, context: Context) -> None:
        pairs = _PREFIX_PAIRS.get(query)
        if pairs is None:
            pairs = tuple(
                (query[:end], query) for end in range(1, len(query) + 1)
            )
            if len(_PREFIX_PAIRS) >= _PREFIX_PAIRS_LIMIT:
                _PREFIX_PAIRS.clear()
            _PREFIX_PAIRS[query] = pairs
        context.write_all(pairs)


def _merge_counts(values: Iterator[Any]) -> dict:
    """Fold raw query strings and ``{query: m}`` maps into one dict.

    A plain dict with ``get`` beats ``collections.Counter`` here:
    Counter's missing-key path costs a ``__missing__`` call per new
    query, and this fold runs once per reduce group.
    """
    counts: dict = {}
    get = counts.get
    for value in values:
        if isinstance(value, dict):
            for query, count in value.items():
                counts[query] = get(query, 0) + count
        else:
            counts[value] = get(value, 0) + 1
    return counts


class QuerySuggestionCombiner(Combiner):
    """Replace repeated queries in a group with one frequency map."""

    #: Count-dict union is a commutative monoid (identity: empty dict),
    #: so re-combining combined output is lossless and node-level
    #: in-node combining is legal for this workload.
    monoidal = True

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        context.write(key, _merge_counts(values))


class QuerySuggestionReducer(Reducer):
    """Emit the top-``k`` most frequent queries for each prefix.

    Ties are broken lexicographically so the job output is fully
    deterministic, regardless of value arrival order.
    """

    def __init__(self, k: int = 5):
        self.k = k

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        counts = _merge_counts(values)
        if len(counts) == 1:
            # The common case by far (most prefixes see one distinct
            # query): no ordering to compute.
            context.write(key, list(counts))
            return
        # Two stable sorts give (count desc, query asc) without a
        # per-item key tuple: lexicographic first, then by count with
        # ``reverse=True`` (which keeps equal counts in lexicographic
        # order — ``reverse`` does not disturb stability).
        top = sorted(counts)
        top.sort(key=counts.__getitem__, reverse=True)
        context.write(key, top[: self.k])


class PrefixPartitioner(Partitioner):
    """Partition on the first ``prefix_len`` characters of the key.

    With ``prefix_len = 1`` every prefix of a query lands in the same
    reduce task (maximal sharing); ``prefix_len = 5`` trades some
    sharing on very short prefixes for more distinct partitions.
    """

    #: Cap on the per-instance key → partition memo.
    _MEMO_LIMIT = 1 << 16

    def __init__(self, prefix_len: int):
        if prefix_len < 1:
            raise ValueError("prefix_len must be >= 1")
        self.prefix_len = prefix_len
        self._memo: dict[str, int] = {}
        self._memo_partitions: int | None = None

    def get_partition(self, key: str, num_partitions: int) -> int:
        # Memoised per instance, like HashPartitioner: the assignment
        # for a key is pure, and intermediate keys repeat heavily.
        memo = self._memo
        if self._memo_partitions != num_partitions:
            memo.clear()
            self._memo_partitions = num_partitions
        partition = memo.get(key)
        if partition is None:
            partition = (
                stable_hash(key[: self.prefix_len]) % num_partitions
            )
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            memo[key] = partition
        return partition


def query_suggestion_job(
    num_reducers: int = 8,
    k: int = 5,
    partitioner: Partitioner | None = None,
    with_combiner: bool = False,
    **job_kwargs: Any,
) -> JobConf:
    """A ready-to-run Query-Suggestion job configuration."""
    return JobConf(
        mapper=QuerySuggestionMapper,
        reducer=partial(QuerySuggestionReducer, k=k),
        combiner=QuerySuggestionCombiner if with_combiner else None,
        partitioner=partitioner
        if partitioner is not None
        else PrefixPartitioner(5),
        num_reducers=num_reducers,
        name="query-suggestion",
        **job_kwargs,
    )
