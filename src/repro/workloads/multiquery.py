"""Multi-query scan sharing (paper Sections 1 and 8).

The paper argues that scan-sharing / multi-query optimisation systems
(MRShare, Pig's merged jobs, CoScan, ...) "are a perfect target for
Anti-Combining because a single record produced by the shared operator
might have to be duplicated many times in order to forward it to the
downstream operators of the queries involved."

This module models that setting: several queries over the same input
are merged into one job.  The shared Map runs every query's mapper on
each input record and *tags* each output key with its query id, so one
reduce pass answers all queries.  Whenever two queries emit the same
value for a record (common — e.g. both forward the record itself),
EagerSH collapses the duplicates; LazySH can go further and ship the
input once per reduce task regardless of how many queries want it.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterator, Sequence

from repro.mr.api import (
    Context,
    Mapper,
    Partitioner,
    Reducer,
    stable_hash,
)
from repro.mr.config import JobConf


class Query:
    """One logical query: a mapper factory and a reducer factory."""

    def __init__(
        self,
        name: str,
        mapper_factory: Callable[[], Mapper],
        reducer_factory: Callable[[], Reducer],
    ):
        self.name = name
        self.mapper_factory = mapper_factory
        self.reducer_factory = reducer_factory


class SharedScanMapper(Mapper):
    """Run every query's Map over the shared scan, tagging the keys."""

    def __init__(self, queries: Sequence[Query]):
        if not queries:
            raise ValueError("at least one query is required")
        self._queries = list(queries)
        self._mappers: list[Mapper] | None = None

    def setup(self, context: Context) -> None:
        self._mappers = [q.mapper_factory() for q in self._queries]
        for query, mapper in zip(self._queries, self._mappers):
            mapper.setup(self._tagging_context(context, query.name))

    def _tagging_context(self, context: Context, name: str) -> Context:
        return context.with_sink(
            lambda key, value: context.write((name, key), value)
        )

    def map(self, key: Any, value: Any, context: Context) -> None:
        assert self._mappers is not None, "setup() was not called"
        for query, mapper in zip(self._queries, self._mappers):
            mapper.map(
                key, value, self._tagging_context(context, query.name)
            )

    def cleanup(self, context: Context) -> None:
        assert self._mappers is not None
        for query, mapper in zip(self._queries, self._mappers):
            mapper.cleanup(self._tagging_context(context, query.name))


class SharedScanReducer(Reducer):
    """Dispatch each tagged group to its query's reducer."""

    def __init__(self, queries: Sequence[Query]):
        self._reducers = {
            q.name: q.reducer_factory() for q in queries
        }

    def setup(self, context: Context) -> None:
        for name, reducer in self._reducers.items():
            reducer.setup(self._tagging_context(context, name))

    def _tagging_context(self, context: Context, name: str) -> Context:
        return context.with_sink(
            lambda key, value: context.write((name, key), value)
        )

    def reduce(
        self, tagged_key: tuple, values: Iterator[Any], context: Context
    ) -> None:
        name, key = tagged_key
        reducer = self._reducers.get(name)
        if reducer is None:
            raise KeyError(f"no query named {name!r}")
        reducer.reduce(key, values, self._tagging_context(context, name))

    def cleanup(self, context: Context) -> None:
        for name, reducer in self._reducers.items():
            reducer.cleanup(self._tagging_context(context, name))


class SharedKeyPartitioner(Partitioner):
    """Partition on the *untagged* key, so the queries' records for the
    same underlying key land together — maximising value sharing."""

    def get_partition(self, tagged_key: tuple, num_partitions: int) -> int:
        return stable_hash(tagged_key[1]) % num_partitions


def shared_scan_job(
    queries: Sequence[Query],
    num_reducers: int = 8,
    **job_kwargs: Any,
) -> JobConf:
    """Merge ``queries`` into one scan-sharing job configuration."""
    queries = list(queries)
    if not queries:
        raise ValueError("at least one query is required")
    names = [q.name for q in queries]
    if len(set(names)) != len(names):
        raise ValueError("query names must be unique")
    return JobConf(
        mapper=partial(SharedScanMapper, queries),
        reducer=partial(SharedScanReducer, queries),
        partitioner=SharedKeyPartitioner(),
        num_reducers=num_reducers,
        name="shared-scan[" + ",".join(names) + "]",
        **job_kwargs,
    )


def split_results_by_query(
    output: list[tuple[tuple, Any]]
) -> dict[str, list[tuple[Any, Any]]]:
    """Demultiplex a shared-scan job's output back into per-query results."""
    results: dict[str, list[tuple[Any, Any]]] = {}
    for (name, key), value in output:
        results.setdefault(name, []).append((key, value))
    return results


# -- pipeline port -------------------------------------------------------
def _select_query(name: str) -> Callable[[list], list]:
    def select(output: list) -> list:
        return [(key, value) for (tag, key), value in output if tag == name]

    return select


def run_multiquery_pipeline(
    queries: Sequence[Query],
    records: Sequence[tuple[Any, Any]],
    num_reducers: int = 8,
    num_splits: int = 8,
    runner: Any = None,
    shared: bool = True,
    max_concurrent_stages: int = 1,
    **job_kwargs: Any,
) -> tuple[dict[str, list], "PipelineResult"]:
    """The multi-query setting as a dataflow pipeline.

    ``shared=True`` runs one merged scan-sharing job and demultiplexes
    per-query result datasets with transforms.  ``shared=False`` runs
    one job per query over the same source dataset — the per-query
    branches are independent stages of one wave, so they execute
    concurrently when ``max_concurrent_stages > 1``.  Either way the
    per-query datasets (``query.<name>``) carry untagged keys and match
    :func:`split_results_by_query` of the corresponding job output.

    Returns ``({query name: records}, PipelineResult)``.
    """
    from repro.pipeline import Pipeline

    queries = list(queries)
    pipeline = Pipeline(
        "multiquery",
        runner=runner,
        max_concurrent_stages=max_concurrent_stages,
    )
    docs = pipeline.source("docs", records)
    if shared:
        scan = pipeline.mapreduce(
            "shared_scan",
            shared_scan_job(queries, num_reducers=num_reducers, **job_kwargs),
            docs,
            num_splits=num_splits,
        )
        for query in queries:
            pipeline.transform(
                f"query.{query.name}", _select_query(query.name), scan
            )
    else:
        for query in queries:
            scan = pipeline.mapreduce(
                f"scan.{query.name}",
                shared_scan_job(
                    [query], num_reducers=num_reducers, **job_kwargs
                ),
                docs,
                num_splits=num_splits,
            )
            pipeline.transform(
                f"query.{query.name}", _select_query(query.name), scan
            )
    result = pipeline.run()
    per_query = {
        query.name: result.dataset(f"query.{query.name}")
        for query in queries
    }
    return per_query, result
