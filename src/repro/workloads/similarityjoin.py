"""Set-similarity self-join with prefix filtering (paper Section 1).

The paper lists similarity joins [Vernica et al., SIGMOD 2010; Afrati
et al., ICDE 2012] among the applications that "rely on input
replication in the map phase" and therefore benefit from
Anti-Combining.  This module implements the classic prefix-filtering
kernel of the Vernica et al. algorithm as one MapReduce job:

* Records are token sets (e.g. the words of a title).  Two records
  match when their Jaccard similarity reaches a threshold ``t``.
* **Prefix filter**: order tokens by a global ordering (rarest first in
  the full algorithm; any fixed total order is correct).  Two sets with
  ``J(a, b) >= t`` must share a token among the first
  ``len(x) - ceil(t * len(x)) + 1`` tokens of each — the *prefix*.
* **Map** emits the whole record once per prefix token — replication
  with a common value, the Anti-Combining sweet spot.
* **Reduce** (one call per token) verifies Jaccard over the candidate
  pairs that share the token.  A pair is verified only by its
  *smallest* common prefix token, so every matching pair is emitted
  exactly once.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Any, Iterator

from repro.mr.api import Context, Mapper, Reducer
from repro.mr.config import JobConf


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two token sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def prefix_length(size: int, threshold: float) -> int:
    """Prefix-filter length for a set of ``size`` tokens."""
    if size == 0:
        return 0
    return size - math.ceil(threshold * size) + 1


class SimilarityJoinMapper(Mapper):
    """Emit ``(token, (record_id, tokens))`` for every prefix token."""

    def __init__(self, threshold: float):
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold

    def map(self, record_id: Any, tokens: list, context: Context) -> None:
        ordered = sorted(set(tokens))
        prefix = ordered[: prefix_length(len(ordered), self.threshold)]
        for token in prefix:
            context.write(token, (record_id, ordered))


class SimilarityJoinReducer(Reducer):
    """Verify candidate pairs sharing one prefix token."""

    def __init__(self, threshold: float):
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold

    def _verifying_token(self, a: list, b: list) -> Any:
        """The smallest token shared by both records' prefixes."""
        prefix_a = set(a[: prefix_length(len(a), self.threshold)])
        prefix_b = set(b[: prefix_length(len(b), self.threshold)])
        common = prefix_a & prefix_b
        return min(common) if common else None

    def reduce(
        self, token: Any, values: Iterator[tuple], context: Context
    ) -> None:
        candidates = [(rid, list(tokens)) for rid, tokens in values]
        candidates.sort(key=lambda item: item[0])
        for i, (id_a, tokens_a) in enumerate(candidates):
            set_a = frozenset(tokens_a)
            for id_b, tokens_b in candidates[i + 1 :]:
                if id_a == id_b:
                    continue
                # emit each pair from exactly one reduce call: the one
                # for the smallest shared prefix token
                if self._verifying_token(tokens_a, tokens_b) != token:
                    continue
                similarity = jaccard(set_a, frozenset(tokens_b))
                if similarity >= self.threshold:
                    context.write(
                        (id_a, id_b), round(similarity, 6)
                    )


def similarity_join_job(
    threshold: float = 0.7,
    num_reducers: int = 8,
    **job_kwargs: Any,
) -> JobConf:
    """A ready-to-run set-similarity self-join job configuration."""
    return JobConf(
        mapper=partial(SimilarityJoinMapper, threshold),
        reducer=partial(SimilarityJoinReducer, threshold),
        num_reducers=num_reducers,
        name="similarity-join",
        **job_kwargs,
    )


def brute_force_similarity_join(
    records: list[tuple[Any, list]], threshold: float
) -> list[tuple[tuple, float]]:
    """Reference implementation for testing: all pairs, no filtering."""
    sets = [(rid, frozenset(tokens)) for rid, tokens in records]
    sets.sort(key=lambda item: item[0])
    result = []
    for i, (id_a, set_a) in enumerate(sets):
        for id_b, set_b in sets[i + 1 :]:
            similarity = jaccard(set_a, set_b)
            if similarity >= threshold:
                result.append(((id_a, id_b), round(similarity, 6)))
    return sorted(result)
