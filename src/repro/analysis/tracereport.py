"""Per-phase profiling report over a recorded trace (``repro trace``).

Consumes the JSONL flavour written by ``repro run --trace`` (see
:mod:`repro.obs.export`) and renders, per job:

* a **phase breakdown** — every span name aggregated into calls, total
  seconds, mean/max, and share of the job's total span time.  This is
  the measured counterpart of the paper's Table 2 cost breakdown: the
  ``map.phase.*`` / ``reduce.phase.*`` rows split a strategy's runtime
  into the phases the paper attributes costs to, and the ``shared.*``
  rows expose the Anti-Combining-specific work (decode, Shared spills,
  run merges) that plain MapReduce does not have;
* an **attempt summary** from the event log — attempts started /
  failed per task kind and the CPU seconds burned by failed attempts
  (wasted work made visible).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.analysis.report import format_table
from repro.obs.trace import JobTrace


def phase_rows(job: JobTrace) -> list[dict[str, Any]]:
    """Aggregate the job's spans by name: calls, totals, share."""
    stats: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    for span in job.spans:
        entry = stats.get(span.name)
        if entry is None:
            entry = stats[span.name] = {
                "phase": span.name,
                "category": span.category,
                "calls": 0,
                "total_s": 0.0,
                "max_s": 0.0,
            }
            order.append(span.name)
        entry["calls"] += 1
        entry["total_s"] += span.duration
        entry["max_s"] = max(entry["max_s"], span.duration)
    rows = [stats[name] for name in order]
    grand_total = sum(row["total_s"] for row in rows)
    for row in rows:
        row["mean_s"] = row["total_s"] / row["calls"]
        row["share_%"] = (
            100.0 * row["total_s"] / grand_total if grand_total > 0 else 0.0
        )
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def attempt_rows(job: JobTrace) -> list[dict[str, Any]]:
    """Started/failed attempt counts and wasted CPU, per task kind."""
    stats: dict[str, dict[str, Any]] = {}
    for event in job.events:
        kind = event.get("kind", "?")
        entry = stats.setdefault(
            kind,
            {"kind": kind, "started": 0, "failed": 0, "wasted_cpu_s": 0.0},
        )
        if event.get("event") == "start":
            entry["started"] += 1
        elif event.get("event") == "fail":
            entry["failed"] += 1
            entry["wasted_cpu_s"] += float(event.get("cpu_seconds", 0.0))
    return [stats[kind] for kind in sorted(stats)]


def render_job(job: JobTrace) -> str:
    """One job's phase breakdown + attempt summary as text."""
    lines = [f"== job: {job.job_name} =="]
    phases = phase_rows(job)
    if phases:
        headers = [
            "phase",
            "category",
            "calls",
            "total_s",
            "mean_s",
            "max_s",
            "share_%",
        ]
        lines.append(
            format_table(
                headers,
                [[row[header] for header in headers] for row in phases],
            )
        )
    else:
        lines.append("(no spans recorded)")
    attempts = attempt_rows(job)
    if attempts:
        lines.append("")
        headers = ["kind", "started", "failed", "wasted_cpu_s"]
        lines.append(
            format_table(
                headers,
                [[row[header] for header in headers] for row in attempts],
            )
        )
    return "\n".join(lines)


def render_trace_report(jobs: Sequence[JobTrace] | Iterable[JobTrace]) -> str:
    """The full ``repro trace`` report over every job in the file."""
    jobs = list(jobs)
    if not jobs:
        return "(empty trace: no jobs recorded)"
    return "\n\n".join(render_job(job) for job in jobs)
