"""Run-ledger reporting and diffing: ``repro runs ls/show/diff``.

Regression triage over recorded runs: ``diff`` lines up two runs'
deterministic counter receipts, their per-entry ``mr.derived.*``
gauges, and the per-phase span breakdown (aggregated from each run's
``spans.jsonl``, the same rows ``repro trace`` renders) and reports
what moved.  Bench runs diff the same way — their per-suite timings
are recorded as ``bench.<suite>.*`` counters.
"""

from __future__ import annotations

import time
from typing import Any

from repro.analysis.report import format_table
from repro.analysis.tracereport import phase_rows
from repro.obs.export import load_jsonl
from repro.obs.run_store import SPANS_FILE, RunRecord


def _stamp(unix: float) -> str:
    if not unix:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(unix)) + "Z"


def runs_table(records: list[RunRecord]) -> str:
    """The ``repro runs ls`` listing, newest last."""
    if not records:
        return "(empty ledger: no recorded runs)"
    rows = [
        [
            record.run_id,
            record.kind,
            record.name,
            record.status_name,
            len(record.entries),
            _stamp(record.started),
        ]
        for record in records
    ]
    return format_table(
        ["run", "kind", "name", "status", "entries", "started (UTC)"],
        rows,
    )


def render_run(record: RunRecord) -> str:
    """The ``repro runs show <id>`` report."""
    lines = [
        f"run {record.run_id}",
        f"  kind:    {record.kind}",
        f"  name:    {record.name}",
        f"  status:  {record.status_name}",
        f"  started: {_stamp(record.started)}",
        f"  path:    {record.path}",
    ]
    if "error" in record.status:
        lines.append(f"  error:   {record.status['error']}")
    if record.entries:
        rows = []
        for entry in record.entries:
            derived = entry.get("derived", {})
            replication = derived.get("mr.derived.replication.rate")
            rows.append(
                [
                    entry.get("name", ""),
                    entry.get("kind", ""),
                    len(entry.get("counters", {})),
                    f"{replication:.3f}"
                    if replication is not None
                    else "-",
                ]
            )
        lines.append("")
        lines.append(
            format_table(
                ["entry", "kind", "counters", "replication"], rows
            )
        )
    if record.counters:
        lines.append("")
        lines.append(
            format_table(
                ["counter", "value"],
                [
                    [name, record.counters[name]]
                    for name in sorted(record.counters)
                ],
            )
        )
    elif record.status_name == "running":
        lines.append("  (no counter receipt yet: run still in flight)")
    return "\n".join(lines)


def _diff_rows(
    a: dict[str, float], b: dict[str, float]
) -> tuple[list[list[Any]], int]:
    """Rows [name, a, b, delta, ratio] for differing keys; and the
    count of keys whose values matched exactly."""
    rows: list[list[Any]] = []
    same = 0
    for name in sorted(set(a) | set(b)):
        left = a.get(name)
        right = b.get(name)
        if left == right:
            same += 1
            continue
        if left is None or right is None:
            ratio = "-"
        elif left:
            ratio = f"{right / left:.3f}x"
        else:
            ratio = "-"
        delta = (
            right - left
            if left is not None and right is not None
            else "-"
        )
        rows.append(
            [
                name,
                "-" if left is None else left,
                "-" if right is None else right,
                delta,
                ratio,
            ]
        )
    return rows, same


def _derived_by_entry(record: RunRecord) -> dict[str, float]:
    """Flatten per-entry derived gauges to ``entry/gauge`` keys."""
    flat: dict[str, float] = {}
    for entry in record.entries:
        name = entry.get("name", "")
        for gauge, value in entry.get("derived", {}).items():
            flat[f"{name}/{gauge}"] = value
    return flat


def _phase_totals(record: RunRecord) -> dict[str, float]:
    """Total seconds per span name across all jobs of one run."""
    spans_path = record.path / SPANS_FILE
    if not spans_path.exists():
        return {}
    totals: dict[str, float] = {}
    for job in load_jsonl(spans_path):
        for row in phase_rows(job):
            phase = row["phase"]
            totals[phase] = totals.get(phase, 0.0) + row["total_s"]
    return totals


def render_diff(a: RunRecord, b: RunRecord) -> str:
    """The ``repro runs diff <a> <b>`` report."""
    lines = [
        f"a: {a.run_id}  ({a.kind}:{a.name}, {a.status_name})",
        f"b: {b.run_id}  ({b.kind}:{b.name}, {b.status_name})",
    ]

    counter_rows, same = _diff_rows(a.counters or {}, b.counters or {})
    if counter_rows:
        lines.append("")
        lines.append(f"counters ({same} identical, not shown):")
        lines.append(
            format_table(
                ["counter", "a", "b", "delta", "b/a"], counter_rows
            )
        )
    else:
        lines.append("")
        lines.append(f"counters: identical ({same} compared)")

    derived_rows, _ = _diff_rows(
        _derived_by_entry(a), _derived_by_entry(b)
    )
    if derived_rows:
        lines.append("")
        lines.append("derived gauges (per entry):")
        lines.append(
            format_table(
                ["entry/gauge", "a", "b", "delta", "b/a"], derived_rows
            )
        )

    phases_a = _phase_totals(a)
    phases_b = _phase_totals(b)
    if phases_a or phases_b:
        phase_diff, _ = _diff_rows(phases_a, phases_b)
        if phase_diff:
            lines.append("")
            lines.append("per-phase span seconds:")
            lines.append(
                format_table(
                    ["phase", "a_s", "b_s", "delta", "b/a"], phase_diff
                )
            )
    return "\n".join(lines)
