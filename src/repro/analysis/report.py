"""Tabular reporting for the per-table/figure experiment drivers.

Every experiment returns an :class:`ExperimentResult`: the paper
artefact it reproduces, ordered rows of named columns, and free-form
notes (e.g. the paper's reference factors).  ``table()`` renders the
rows the way the benchmark harness prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def human_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-unit suffix."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def reduction_factor(original: float, optimized: float) -> float:
    """How many times smaller/cheaper ``optimized`` is vs ``original``."""
    if optimized <= 0:
        return float("inf") if original > 0 else 1.0
    return original / optimized


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text aligned table (first column left, rest right)."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines = [fmt_row(list(headers))]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The outcome of one table/figure reproduction."""

    #: Paper artefact id, e.g. "Figure 9" or "Table 2".
    artifact: str
    title: str
    headers: list[str]
    rows: list[dict[str, Any]]
    #: Free-form observations (measured factors, paper reference values).
    notes: dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        """Render the rows as an aligned plain-text table."""
        body = [
            [row.get(header, "") for header in self.headers]
            for row in self.rows
        ]
        return format_table(self.headers, body)

    def report(self) -> str:
        """Full report: heading, table, and notes."""
        lines = [f"== {self.artifact}: {self.title} ==", self.table()]
        if self.notes:
            lines.append("")
            for key, value in self.notes.items():
                lines.append(f"  {key}: {_render_cell(value)}")
        return "\n".join(lines)

    def column(self, header: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(header) for row in self.rows]

    def row_by(self, header: str, value: Any) -> dict[str, Any]:
        """The first row whose ``header`` column equals ``value``."""
        for row in self.rows:
            if row.get(header) == value:
                return row
        raise KeyError(f"no row with {header}={value!r}")
