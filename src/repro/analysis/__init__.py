"""Result formatting and comparison helpers for the experiments."""

from repro.analysis.report import (
    ExperimentResult,
    format_table,
    human_bytes,
    reduction_factor,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "human_bytes",
    "reduction_factor",
]
