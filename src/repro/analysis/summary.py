"""Aggregate persisted benchmark reports into one document.

Every benchmark writes its reproduced table to
``benchmarks/results/<driver>.txt``; this module collects them into a
single summary (the raw material for EXPERIMENTS.md), in a stable
order that follows the paper's evaluation section.
"""

from __future__ import annotations

import pathlib

#: Preferred presentation order; unknown reports sort after these.
_ORDER = [
    "run_fig9",
    "run_fig10",
    "run_table1",
    "run_table2",
    "run_fig11",
    "run_sec71",
    "run_wordcount_experiment",
    "run_pagerank_experiment",
    "run_fig12",
    "run_similarity_join_experiment",
    "run_multiquery_experiment",
    "run_hits_experiment",
    "run_star_join_experiment",
    "run_knn_join_experiment",
    "run_ablation_crosscall",
    "run_ablation_granularity",
    "run_ablation_skew",
    "run_ablation_record_percent",
]


def collect_reports(results_dir: pathlib.Path) -> dict[str, str]:
    """Read every persisted report; returns ``{driver_name: text}``."""
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        return {}
    return {
        path.stem: path.read_text().rstrip()
        for path in sorted(results_dir.glob("*.txt"))
    }


def _sort_key(name: str) -> tuple[int, str]:
    try:
        return _ORDER.index(name), name
    except ValueError:
        return len(_ORDER), name


def render_summary(reports: dict[str, str]) -> str:
    """One document with every report, in evaluation-section order."""
    if not reports:
        return (
            "No benchmark results found.\n"
            "Run `pytest benchmarks/ --benchmark-only` first.\n"
        )
    sections = [
        reports[name] for name in sorted(reports, key=_sort_key)
    ]
    header = (
        "# Reproduced results\n"
        f"# {len(sections)} experiments "
        "(regenerate with: pytest benchmarks/ --benchmark-only)\n"
    )
    return header + "\n" + "\n\n".join(sections) + "\n"


def write_summary(
    results_dir: pathlib.Path, out_path: pathlib.Path
) -> str:
    """Render and persist the summary; returns the rendered text."""
    text = render_summary(collect_reports(results_dir))
    out_path = pathlib.Path(out_path)
    out_path.write_text(text)
    return text
