"""Claim benchmarks: the introduction's motivating application classes.

Not paper figures — the paper's Section 1 claims similarity joins,
multi-query scan sharing and HITS all benefit from Anti-Combining; the
evaluation never measures them.  These benches attach numbers to each
claim.
"""

from repro.experiments import (
    run_hits_experiment,
    run_knn_join_experiment,
    run_multiquery_experiment,
    run_similarity_join_experiment,
    run_star_join_experiment,
)


def test_claim_similarity_join(report_runner) -> None:
    result = report_runner(run_similarity_join_experiment, num_records=800)
    assert result.notes["output_factor"] > 1.2
    assert result.notes["matches_found"] > 0


def test_claim_multiquery_scan_sharing(report_runner) -> None:
    result = report_runner(run_multiquery_experiment, num_lines=1500)
    assert result.notes["factor_grows_with_sharing"]
    assert result.rows[-1]["Factor"] > result.rows[0]["Factor"]


def test_claim_hits(report_runner) -> None:
    result = report_runner(run_hits_experiment, num_nodes=800, iterations=3)
    by_metric = {row["Metric"]: row for row in result.rows}
    assert by_metric["Shuffle (B)"]["Factor"] > 1.5
    assert by_metric["Disk read (B)"]["Factor"] > 2


def test_claim_star_join(report_runner) -> None:
    result = report_runner(run_star_join_experiment)
    assert result.notes["output_factor"] > 2
    assert result.notes["join_results"] > 0


def test_claim_knn_join(report_runner) -> None:
    result = report_runner(run_knn_join_experiment)
    assert result.notes["output_factor"] > 2
