#!/usr/bin/env python
"""Regenerate the committed ``BENCH_hotpaths.json`` baseline.

Runs the full hot-path benchmark suites (see :mod:`repro.bench.suites`)
and writes the result document to the repository root.  Intended to be
run on a quiet machine; the committed file is what ``repro bench
--check`` and the CI perf-smoke job compare against.

The ``e2e.fig9`` *baseline* leg deserves care: in-process it toggles
the fast paths off, but several rewrites in this series are ungated
(they are byte-identical, so there is no toggle), which makes the
toggled-off leg faster than the true pre-series code.  To record an
honest end-to-end baseline, measure fig9 at the pre-series commit::

    git worktree add /tmp/seedtree <pre-series-commit>
    PYTHONPATH=/tmp/seedtree/src python - <<'PY'
    import statistics, time
    from repro.experiments import run_fig9
    run_fig9(num_queries=2500, num_reducers=4, num_splits=4)  # warmup
    times = []
    for _ in range(3):
        t0 = time.perf_counter()
        run_fig9(num_queries=2500, num_reducers=4, num_splits=4)
        times.append(time.perf_counter() - t0)
    print(statistics.median(times))
    PY

and pass the median via ``--e2e-baseline`` so the committed file
records it (with provenance) instead of the in-process toggle.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_hotpaths.py \
        [--quick] [--out BENCH_hotpaths.json] \
        [--e2e-baseline SECONDS --e2e-baseline-note "..."]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import format_table, results_to_json, run_suites  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small inputs, few repeats"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_hotpaths.json"),
        help="output path (default: BENCH_hotpaths.json at the repo root)",
    )
    parser.add_argument(
        "--e2e-baseline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the e2e.fig9 baseline with a seed-measured wall "
        "time (see module docstring)",
    )
    parser.add_argument(
        "--e2e-baseline-note",
        default=None,
        help="provenance note recorded alongside --e2e-baseline",
    )
    args = parser.parse_args(argv)

    results = run_suites(
        quick=args.quick,
        progress=lambda name: print(f"running suite: {name}", flush=True),
    )

    extra: dict = {}
    if args.e2e_baseline is not None:
        for result in results:
            if result.name == "e2e.fig9":
                result.baseline_s = args.e2e_baseline
        note = args.e2e_baseline_note or (
            "baseline_s measured at the pre-series commit (see "
            "benchmarks/perf/run_hotpaths.py)"
        )
        extra["e2e_baseline_provenance"] = note

    doc = results_to_json(results, quick=args.quick, extra=extra)
    out = Path(args.out)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(format_table(results))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
