"""Section 7.7.1: WordCount with a highly effective Combiner.

Expected shape: map output records cut by ~7x, local disk I/O by
multiples (paper: 9.1x read / 6.3x write), CPU and runtime above 1x
(paper: 1.7x / 1.44x), shuffle essentially unchanged.
"""

from repro.experiments import run_wordcount_experiment


def test_sec771_wordcount(report_runner) -> None:
    result = report_runner(
        run_wordcount_experiment, num_lines=1500, num_reducers=8
    )
    assert result.row_by("Metric", "Map output records")["Factor"] > 4
    assert result.row_by("Metric", "Disk read (B)")["Factor"] > 2
    assert result.row_by("Metric", "CPU (s)")["Factor"] > 1
