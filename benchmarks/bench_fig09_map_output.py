"""Figure 9: Total Map Output Size for Query-Suggestion.

Regenerates the 4 strategies x 3 partitioners grid.  Expected shape
(paper Section 7.2): Original constant across partitioners; EagerSH
and LazySH always smaller; AdaptiveSH best (or tied with LazySH at
Prefix-1 modulo flag bytes); best reduction factor in the tens.
"""

from repro.experiments import run_fig9


def test_fig9_map_output(report_runner) -> None:
    result = report_runner(run_fig9, num_queries=6000, num_reducers=8)
    for row in result.rows:
        assert row["AdaptiveSH"] < row["Original"]
    assert result.notes["best_reduction_factor"] > 10
