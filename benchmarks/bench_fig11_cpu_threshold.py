"""Figure 11: total CPU time under runtime cost-based optimisation.

Expected shape (paper Section 7.6): Adaptive-inf wins at low extra Map
work, loses to Adaptive-0 as the Map gets expensive (its LazySH
re-executions double the busy work); Adaptive-alpha follows the
winner on both ends of the sweep.
"""

from repro.experiments import run_fig11


def test_fig11_cpu_threshold(report_runner) -> None:
    result = report_runner(
        run_fig11,
        num_queries=1200,
        num_reducers=4,
        work_levels=(0, 2, 4, 8, 12, 16),
    )
    high = result.rows[-1]
    assert high["Adaptive-0"] < high["Adaptive-inf"]
    assert high["Adaptive-alpha"] < high["Adaptive-inf"]
