"""Figure 10: Map output size with Combiner + gzip compression.

Expected shape (paper Section 7.4): compression shrinks every bar, but
Anti-Combining still beats Original for all three partitioners.
"""

from repro.experiments import run_fig10


def test_fig10_compressed_output(report_runner) -> None:
    result = report_runner(run_fig10, num_queries=6000, num_reducers=8)
    for row in result.rows:
        assert row["AdaptiveSH"] < row["Original"]
