"""Figure 12: 1-Bucket-Theta band join, map output size and runtime.

Expected shape (paper Section 7.7.3): heavy replication makes
Original's map output huge; AdaptiveSH (choosing LazySH everywhere)
cuts it by multiples (paper: 9.5x) and uncompressed AdaptiveSH beats
compressed Original; runtime tracks map output size.
"""

from repro.experiments import run_fig12


def test_fig12_thetajoin(report_runner) -> None:
    # 24x24 regions over 8 reducers models the memory-aware chunking:
    # replication 48x, approaching the paper's 67x.
    result = report_runner(
        run_fig12,
        num_records=1200,
        grid_rows=24,
        grid_cols=24,
        num_reducers=8,
    )
    by_name = {row["Configuration"]: row for row in result.rows}
    assert (
        by_name["AdaptiveSH"]["Map Output (B)"]
        < by_name["Original"]["Map Output (B)"] / 5
    )
    # AdaptiveSH without compression already beats Original with it
    assert (
        by_name["AdaptiveSH"]["Map Output (B)"]
        < by_name["Original-CP"]["Map Output (B)"]
    )
    assert result.notes["adaptive_lazy_fraction"] > 0.9
    assert (
        by_name["AdaptiveSH"]["Runtime (s)"]
        < by_name["Original"]["Runtime (s)"]
    )
