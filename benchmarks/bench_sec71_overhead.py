"""Section 7.1: Anti-Combining overhead on Sort (no sharing possible).

Expected shape: every record degenerates to a PLAIN (flagged) record;
disk/transfer overhead is the flag bytes (a few percent at our record
sizes, 0.2% at the paper's); CPU/runtime overhead against a Map that
does real work stays around ten percent (paper: +7.8% CPU).
"""

from repro.experiments import run_sec71


def test_sec71_overhead(report_runner) -> None:
    result = report_runner(run_sec71, num_lines=4000, num_reducers=8)
    assert result.notes["all_records_degenerate_to_plain"]
    disk = result.row_by("Metric", "Total disk read+write (B)")
    assert disk["Overhead %"] < 10
    cpu = result.row_by("Metric", "Total CPU, busy Map (s)")
    assert cpu["Overhead %"] < 50
