"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper artefacts — these isolate one design decision each:
cross-call sharing (the paper's Section 9 future work), eager/lazy
decision granularity (Section 6.1), LazySH decode skew (Section 6.2),
and the record-metadata spill mechanism behind the WordCount disk
factors (Section 7.7.1).
"""

from repro.experiments import (
    run_ablation_crosscall,
    run_ablation_granularity,
    run_ablation_record_percent,
    run_ablation_skew,
)


def test_ablation_crosscall(report_runner) -> None:
    result = report_runner(run_ablation_crosscall, num_queries=3000)
    by_name = {row["Configuration"]: row for row in result.rows}
    # cross-call sharing strictly improves on per-call EagerSH
    assert (
        by_name["EagerSH (cross-call)"]["Map Output (B)"]
        < by_name["EagerSH (per-call)"]["Map Output (B)"]
    )
    assert (
        by_name["EagerSH (cross-call)"]["Map Records"]
        < by_name["EagerSH (per-call)"]["Map Records"]
    )


def test_ablation_granularity(report_runner) -> None:
    result = report_runner(run_ablation_granularity, num_queries=3000)
    assert result.notes["per_partition_advantage"] >= 1.0


def test_ablation_skew(report_runner) -> None:
    result = report_runner(run_ablation_skew, num_records=2000)
    by_name = {row["Configuration"]: row for row in result.rows}
    lazy_heavy = by_name["Adaptive-inf (lazy-heavy)"]
    eager_only = by_name["Adaptive-0 (eager only)"]
    # lazy minimises transfer but concentrates decode work on reducers
    assert lazy_heavy["Map Output (B)"] < eager_only["Map Output (B)"]
    assert lazy_heavy["Reexecutions"] > 0
    assert eager_only["Reexecutions"] == 0
    assert by_name["Original"]["Reexecutions"] == 0
    # the re-execution load is measurably imbalanced (max/mean > 1)
    assert lazy_heavy["Reexec skew"] > 1.0


def test_ablation_record_percent(report_runner) -> None:
    result = report_runner(run_ablation_record_percent, num_lines=1000)
    with_mechanism = result.rows[0]["Factor"]
    without_mechanism = result.rows[1]["Factor"]
    assert with_mechanism > without_mechanism
