"""Table 1: cost breakdown per compression technique (Prefix-5).

Expected shape: bzip2 best ratio / worst CPU, snappy worst ratio, and
AdaptiveSH+gzip winning all four columns (disk read, disk write, map
output size, CPU).
"""

from repro.experiments import run_table1


def test_table1_codecs(report_runner) -> None:
    result = report_runner(run_table1, num_queries=6000, num_reducers=8)
    by_name = {row["Configuration"]: row for row in result.rows}
    anti = by_name["AdaptiveSH+gzip"]
    for codec in ("Deflate", "Gzip", "Bzip2", "Snappy"):
        assert anti["Map Output (B)"] < by_name[codec]["Map Output (B)"]
        assert anti["Disk Read (B)"] < by_name[codec]["Disk Read (B)"]
        assert anti["Disk Write (B)"] < by_name[codec]["Disk Write (B)"]
