"""Table 2: total cost breakdown of Query-Suggestion (Prefix-5).

Expected shape: AdaptiveSH variants beat their Original counterparts
on CPU and local disk; Combine-in-Shared (-CB) eliminates (virtually
all) Shared spills — the Section 7.5 finding.
"""

from repro.experiments import run_table2


def test_table2_breakdown(report_runner) -> None:
    result = report_runner(run_table2, num_queries=6000, num_reducers=8)
    by_name = {row["Algorithm"]: row for row in result.rows}
    assert (
        by_name["AdaptiveSH"]["Disk Read (B)"]
        < by_name["Original"]["Disk Read (B)"]
    )
    assert (
        by_name["AdaptiveSH"]["CPU (s)"] < by_name["Original"]["CPU (s)"]
    )
    assert (
        by_name["AdaptiveSH-CB"]["Shared Spills"]
        < by_name["AdaptiveSH"]["Shared Spills"]
    )
