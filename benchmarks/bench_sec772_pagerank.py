"""Section 7.7.2: PageRank, five iterations on a skewed web graph.

Expected shape (paper): shuffle ~2.7x, disk read ~3.5x, disk write
~3.2x, CPU ~2.8x, runtime ~2.4x — all in AdaptiveSH's favour.
"""

from repro.experiments import run_pagerank_experiment


def test_sec772_pagerank(report_runner) -> None:
    result = report_runner(
        run_pagerank_experiment, num_nodes=1500, iterations=5, num_reducers=8
    )
    assert result.row_by("Metric", "Shuffle (B)")["Factor"] > 1.5
    assert result.row_by("Metric", "Disk read (B)")["Factor"] > 2
    assert result.row_by("Metric", "Runtime (s)")["Factor"] > 1
