"""Benchmark harness plumbing.

Each benchmark runs one experiment driver exactly once (the drivers
are full multi-job experiments, not micro-benchmarks), prints the
reproduced table to the terminal (bypassing pytest's capture), and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can be
cross-checked against the latest run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report_runner(benchmark, capfd):
    """Run an experiment under pytest-benchmark and report its table."""

    def run(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1
        )
        report = result.report()
        with capfd.disabled():
            print(f"\n{report}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / f"{fn.__name__}.txt"
        out_path.write_text(report + "\n")
        return result

    return run
