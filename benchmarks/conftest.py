"""Benchmark harness plumbing.

Each benchmark runs one experiment driver exactly once (the drivers
are full multi-job experiments, not micro-benchmarks), prints the
reproduced table to the terminal (bypassing pytest's capture), and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can be
cross-checked against the latest run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def executor_from_env():
    """Honour ``REPRO_JOBS=N`` for the whole benchmark session.

    ``REPRO_JOBS=4 pytest benchmarks/`` runs every experiment's map and
    reduce tasks on four worker processes; counters (and therefore the
    persisted reports) are byte-identical to a serial run.
    """
    from repro.mr.executor import clear_default_executor, configure_from_env

    configure_from_env()
    yield
    clear_default_executor()


@pytest.fixture
def report_runner(benchmark, capfd):
    """Run an experiment under pytest-benchmark and report its table."""

    def run(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1
        )
        report = result.report()
        with capfd.disabled():
            print(f"\n{report}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / f"{fn.__name__}.txt"
        out_path.write_text(report + "\n")
        return result

    return run
